open Cpla_util

(* Pool.parallel_map carries the parallel timing refresh: its ordering,
   failure and fast-path contracts get dedicated coverage here. *)

let square i = i * i

let test_order_determinism () =
  let xs = Array.init 257 (fun i -> i) in
  let expected = Array.map square xs in
  List.iter
    (fun workers ->
      let got = Pool.parallel_map ~workers square xs in
      Alcotest.(check (array int))
        (Printf.sprintf "results indexed by input order (workers=%d)" workers)
        expected got)
    [ 1; 2; 3; 4; 8 ]

let test_uneven_work_still_ordered () =
  (* items deliberately unbalanced so domains finish out of order *)
  let xs = Array.init 64 (fun i -> i) in
  let f i =
    let spin = if i mod 7 = 0 then 20_000 else 10 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := (!acc + (i * k)) land 0xFFFF
    done;
    (i, !acc)
  in
  let expected = Array.map f xs in
  let got = Pool.parallel_map ~workers:4 f xs in
  Alcotest.(check bool) "deterministic under imbalance" true (expected = got)

exception Boom of int

let test_worker_failure_propagates () =
  let xs = Array.init 50 (fun i -> i) in
  let f i = if i = 31 then raise (Boom i) else i in
  let raised =
    match Pool.parallel_map ~workers:4 f xs with
    | _ -> None
    | exception Pool.Worker_failure e -> Some e
  in
  match raised with
  | Some (Boom 31) -> ()
  | Some e -> Alcotest.failf "wrong payload: %s" (Printexc.to_string e)
  | None -> Alcotest.fail "expected Worker_failure"

let test_sequential_fast_path () =
  (* workers <= 1 must not spawn domains: side effects happen in order, in
     the calling domain, and exceptions surface raw (not wrapped). *)
  let log = ref [] in
  let f i =
    log := i :: !log;
    i + 1
  in
  let xs = [| 5; 6; 7 |] in
  let got = Pool.parallel_map ~workers:1 f xs in
  Alcotest.(check (array int)) "mapped" [| 6; 7; 8 |] got;
  Alcotest.(check (list int)) "in-order, in-domain" [ 7; 6; 5 ] !log;
  let raw =
    match Pool.parallel_map ~workers:0 (fun _ -> raise (Boom 0)) xs with
    | _ -> false
    | exception Boom 0 -> true
    | exception _ -> false
  in
  Alcotest.(check bool) "sequential path raises raw exception" true raw

let test_single_item_stays_sequential () =
  let got = Pool.parallel_map ~workers:8 square [| 9 |] in
  Alcotest.(check (array int)) "singleton" [| 81 |] got;
  let got = Pool.parallel_map ~workers:8 square [||] in
  Alcotest.(check (array int)) "empty" [||] got

let test_more_workers_than_items () =
  let xs = Array.init 3 (fun i -> i) in
  let got = Pool.parallel_map ~workers:16 square xs in
  Alcotest.(check (array int)) "clamped worker count" [| 0; 1; 4 |] got

let suite =
  [
    Alcotest.test_case "result order determinism" `Quick test_order_determinism;
    Alcotest.test_case "ordered under imbalance" `Quick test_uneven_work_still_ordered;
    Alcotest.test_case "worker failure propagates" `Quick test_worker_failure_propagates;
    Alcotest.test_case "sequential fast path" `Quick test_sequential_fast_path;
    Alcotest.test_case "singleton/empty input" `Quick test_single_item_stays_sequential;
    Alcotest.test_case "more workers than items" `Quick test_more_workers_than_items;
  ]
