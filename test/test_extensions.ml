(* Tests for the extension modules: the domain pool, slack analysis,
   solution-format I/O, and the parallel driver path. *)

open Cpla_route
open Cpla_timing

let pin px py = { Net.px; py; pl = 0 }

(* ---- Pool ------------------------------------------------------------------ *)

let test_pool_matches_sequential () =
  let xs = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int)) "same results" (Array.map f xs)
    (Cpla_util.Pool.parallel_map ~workers:4 f xs)

let test_pool_sequential_fallback () =
  let xs = [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "workers=1" [| 2; 4; 6 |]
    (Cpla_util.Pool.parallel_map ~workers:1 (fun x -> 2 * x) xs)

let test_pool_empty () =
  Alcotest.(check (array int)) "empty" [||]
    (Cpla_util.Pool.parallel_map ~workers:4 (fun x -> x) [||])

let test_pool_propagates_exception () =
  Alcotest.(check bool) "raises" true
    (match
       Cpla_util.Pool.parallel_map ~workers:3
         (fun x -> if x = 5 then failwith "boom" else x)
         (Array.init 10 (fun i -> i))
     with
    | exception Cpla_util.Pool.Worker_failure (Failure _) -> true
    | _ -> false)

let pool_property =
  QCheck.Test.make ~name:"pool equals Array.map for pure functions" ~count:30
    QCheck.(pair (int_range 1 8) (array_of_size (QCheck.Gen.int_range 0 50) small_int))
    (fun (workers, xs) ->
      Cpla_util.Pool.parallel_map ~workers (fun x -> x * 3) xs = Array.map (fun x -> x * 3) xs)

(* ---- Slack ------------------------------------------------------------------ *)

let small_design () =
  let spec =
    { Synth.default_spec with Synth.width = 24; height = 24; num_nets = 300; seed = 17 }
  in
  let graph, nets = Synth.generate spec in
  let routed = Router.route_all ~graph nets in
  let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
  Init_assign.run asg;
  asg

let test_slack_clock_budget () =
  let asg = small_design () in
  (* an infinite clock meets every net; a zero clock violates every net *)
  let loose = Slack.analyze asg (Slack.Clock 1e12) in
  Alcotest.(check int) "no violations" 0 loose.Slack.violations;
  Alcotest.(check (float 1e-9)) "wns zero" 0.0 loose.Slack.wns;
  let tight = Slack.analyze asg (Slack.Clock 0.0) in
  Alcotest.(check int) "all violate" (Assignment.num_nets asg) tight.Slack.violations;
  Alcotest.(check bool) "tns negative" true (tight.Slack.tns < 0.0)

let test_slack_scaled_budget () =
  let asg = small_design () in
  (* the lower bound is unreachable at factor 1 for most nets (they carry
     congestion and via detours), and generously reachable at factor 50 *)
  let tight = Slack.analyze asg (Slack.Scaled 1.0) in
  let loose = Slack.analyze asg (Slack.Scaled 50.0) in
  Alcotest.(check bool) "tight has more violations" true
    (tight.Slack.violations >= loose.Slack.violations);
  Alcotest.(check bool) "wns ordering" true (tight.Slack.wns <= loose.Slack.wns)

let test_slack_selection () =
  let asg = small_design () in
  let sel = Slack.select_violating asg (Slack.Scaled 1.5) ~max_nets:5 in
  Alcotest.(check bool) "capped" true (Array.length sel <= 5);
  (* worst first *)
  let report = Slack.analyze asg (Slack.Scaled 1.5) in
  let ok = ref true in
  Array.iteri
    (fun i net ->
      if i > 0 then
        if report.Slack.slacks.(net) < report.Slack.slacks.(sel.(i - 1)) then ok := false)
    sel;
  Alcotest.(check bool) "sorted by slack" true !ok

let test_slack_improves_with_optimisation () =
  let asg = small_design () in
  let before = Slack.analyze asg (Slack.Scaled 2.0) in
  let released = Critical.select asg ~ratio:0.02 in
  ignore (Cpla.Driver.optimize_released asg ~released);
  let after = Slack.analyze asg (Slack.Scaled 2.0) in
  Alcotest.(check bool) "tns no worse" true (after.Slack.tns >= before.Slack.tns -. 1e-6)

(* ---- Solution I/O ------------------------------------------------------------ *)

let two_net_design () =
  let tech = Cpla_grid.Tech.default ~num_layers:4 () in
  let graph =
    Cpla_grid.Graph.create ~tech ~width:8 ~height:8 ~layer_capacity:(Array.make 4 8)
  in
  let n0 = Net.create ~id:0 ~name:"alpha" ~pins:[| pin 0 0; pin 4 0; pin 2 3 |] in
  let n1 = Net.create ~id:1 ~name:"beta" ~pins:[| pin 5 5; pin 7 5 |] in
  let t0 =
    Stree.of_edges ~root:(0, 0) [ ((0, 0), (2, 0)); ((2, 0), (4, 0)); ((2, 0), (2, 3)) ]
  in
  let t1 = Stree.of_edges ~root:(5, 5) [ ((5, 5), (7, 5)) ] in
  Assignment.create ~graph ~nets:[| n0; n1 |] ~trees:[| Some t0; Some t1 |]

let assign_all asg =
  let tech = Assignment.tech asg in
  for net = 0 to Assignment.num_nets asg - 1 do
    Array.iteri
      (fun seg s ->
        Assignment.set_layer asg ~net ~seg
          ~layer:(List.hd (Cpla_grid.Tech.layers_of_dir tech s.Segment.dir)))
      (Assignment.segments asg net)
  done

let test_solution_write_parse_roundtrip () =
  let asg = two_net_design () in
  assign_all asg;
  let text = Solution.write asg in
  match Solution.parse text with
  | Error e -> Alcotest.fail e
  | Ok routes ->
      Alcotest.(check int) "two nets" 2 (List.length routes);
      Alcotest.(check (list string)) "names" [ "alpha"; "beta" ]
        (List.map (fun r -> r.Solution.name) routes)

let test_solution_apply_restores_layers () =
  let asg = two_net_design () in
  assign_all asg;
  (* move a segment up, dump, scramble, re-apply *)
  Assignment.set_layer asg ~net:0 ~seg:0 ~layer:2;
  let text = Solution.write asg in
  let want =
    Array.init 2 (fun net ->
        Array.mapi (fun seg _ -> Assignment.layer asg ~net ~seg) (Assignment.segments asg net))
  in
  (* scramble back to the lowest layers *)
  assign_all asg;
  (match Solution.parse text with
  | Error e -> Alcotest.fail e
  | Ok routes -> (
      match Solution.apply asg routes with
      | Error e -> Alcotest.fail e
      | Ok () -> ()));
  for net = 0 to 1 do
    Array.iteri
      (fun seg expected ->
        Alcotest.(check int)
          (Printf.sprintf "net %d seg %d" net seg)
          expected
          (Assignment.layer asg ~net ~seg))
      want.(net)
  done;
  Alcotest.(check bool) "usage consistent" true (Assignment.check_usage asg = Ok ())

let test_solution_contains_vias () =
  let asg = two_net_design () in
  assign_all asg;
  (* H on 0, V on 1: the junction at (2,0) must emit a via record *)
  let text = Solution.write asg in
  let has_via =
    String.split_on_char '\n' text
    |> List.exists (fun line ->
           match String.index_opt line ',' with
           | None -> false
           | Some _ -> (
               try
                 Scanf.sscanf line " (%d,%d,%d)-(%d,%d,%d)" (fun ax ay l1 bx by l2 ->
                     ax = bx && ay = by && l1 <> l2)
               with Scanf.Scan_failure _ | Failure _ | End_of_file -> false))
  in
  Alcotest.(check bool) "via record present" true has_via

let test_solution_parse_errors () =
  Alcotest.(check bool) "unterminated" true
    (match Solution.parse "netA 0\n(5,5,1)-(25,5,1)\n" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "stray bang" true
    (match Solution.parse "!\n" with Error _ -> true | Ok _ -> false)

let test_solution_unassigned_rejected () =
  let asg = two_net_design () in
  Alcotest.(check bool) "raises" true
    (match Solution.write asg with exception Invalid_argument _ -> true | _ -> false)

(* ---- parallel driver ------------------------------------------------------- *)

let test_parallel_driver_valid () =
  let asg = small_design () in
  let released = Critical.select asg ~ratio:0.02 in
  let avg0, _ = Critical.avg_max_tcp asg released in
  let config = { Cpla.Config.default with Cpla.Config.workers = 3 } in
  let rep = Cpla.Driver.optimize_released ~config asg ~released in
  Alcotest.(check bool) "improves" true (rep.Cpla.Driver.avg_tcp <= avg0 +. 1e-9);
  Alcotest.(check bool) "usage consistent" true (Assignment.check_usage asg = Ok ());
  Alcotest.(check bool) "fully assigned" true (Assignment.fully_assigned asg)

let test_parallel_driver_deterministic () =
  let run () =
    let asg = small_design () in
    let released = Critical.select asg ~ratio:0.02 in
    let config = { Cpla.Config.default with Cpla.Config.workers = 3 } in
    let rep = Cpla.Driver.optimize_released ~config asg ~released in
    (rep.Cpla.Driver.avg_tcp, rep.Cpla.Driver.max_tcp)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same result across runs" true (a = b)

let suite =
  [
    Alcotest.test_case "pool matches sequential" `Quick test_pool_matches_sequential;
    Alcotest.test_case "pool workers=1 fallback" `Quick test_pool_sequential_fallback;
    Alcotest.test_case "pool empty input" `Quick test_pool_empty;
    Alcotest.test_case "pool propagates exceptions" `Quick test_pool_propagates_exception;
    QCheck_alcotest.to_alcotest pool_property;
    Alcotest.test_case "slack clock budgets" `Quick test_slack_clock_budget;
    Alcotest.test_case "slack scaled budgets" `Quick test_slack_scaled_budget;
    Alcotest.test_case "slack selection" `Quick test_slack_selection;
    Alcotest.test_case "slack improves with optimisation" `Slow
      test_slack_improves_with_optimisation;
    Alcotest.test_case "solution write/parse roundtrip" `Quick test_solution_write_parse_roundtrip;
    Alcotest.test_case "solution apply restores layers" `Quick test_solution_apply_restores_layers;
    Alcotest.test_case "solution contains vias" `Quick test_solution_contains_vias;
    Alcotest.test_case "solution parse errors" `Quick test_solution_parse_errors;
    Alcotest.test_case "solution rejects unassigned" `Quick test_solution_unassigned_rejected;
    Alcotest.test_case "parallel driver valid" `Slow test_parallel_driver_valid;
    Alcotest.test_case "parallel driver deterministic" `Slow test_parallel_driver_deterministic;
  ]
