open Cpla_net
module Job = Cpla_serve.Job

(* End-to-end daemon contracts over loopback TCP: accepted jobs return
   byte-identical results to the sequential reference, overload sheds
   (explicit responses, never failures or dropped connections), cancels
   win over queued and running jobs, malformed frames get error responses
   without killing the connection, and shutdown drains gracefully. *)

(* ---- fixtures -------------------------------------------------------------- *)

let write_gr ~name ~nets ~seed path =
  let spec =
    {
      Cpla_route.Synth.default_spec with
      Cpla_route.Synth.name;
      width = 16;
      height = 16;
      num_layers = 4;
      num_nets = nets;
      seed;
      hotspots = 1;
      blockage_fraction = 0.02;
    }
  in
  let graph, gnets = Cpla_route.Synth.generate spec in
  let nl = Cpla_grid.Graph.num_layers graph in
  let dir_cap d =
    Array.init nl (fun l ->
        if Cpla_grid.Tech.layer_dir (Cpla_grid.Graph.tech graph) l = d then
          spec.Cpla_route.Synth.capacity
        else 0)
  in
  let header =
    {
      Cpla_route.Ispd08.grid_x = Cpla_grid.Graph.width graph;
      grid_y = Cpla_grid.Graph.height graph;
      num_layers = nl;
      vertical_capacity = dir_cap Cpla_grid.Tech.Vertical;
      horizontal_capacity = dir_cap Cpla_grid.Tech.Horizontal;
      min_width = Array.make nl 1;
      min_spacing = Array.make nl 1;
      via_spacing = Array.make nl 1;
      lower_left_x = 0;
      lower_left_y = 0;
      tile_width = 10;
      tile_height = 10;
    }
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (Cpla_route.Ispd08.write { Cpla_route.Ispd08.header; nets = gnets; adjustments = [] }))

(* One small and one slower design, written once for the whole suite. *)
let fixtures =
  lazy
    ((* a dying server may close sockets while a test is mid-write *)
     Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
     let small = Filename.temp_file "cpla-daemon-small" ".gr" in
     let slow = Filename.temp_file "cpla-daemon-slow" ".gr" in
     write_gr ~name:"small" ~nets:150 ~seed:11 small;
     write_gr ~name:"slow" ~nets:700 ~seed:12 slow;
     at_exit (fun () ->
         List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ small; slow ]);
     (small, slow))

let small_gr () = fst (Lazy.force fixtures)
let slow_gr () = snd (Lazy.force fixtures)

(* A spec line that keeps the job sub-second but with plenty of
   cancellation points. *)
let small_line ?(ratio = 0.01) ?(iters = 1) () =
  Printf.sprintf "%s ratio=%g iters=%d" (small_gr ()) ratio iters

let slow_line () = Printf.sprintf "%s ratio=0.05 iters=6" (slow_gr ())

let with_server ?(workers = 2) ?(queue_bound = 64) ?(cost_bound = infinity)
    ?(quota_rate = 1000.0) ?(quota_burst = 1000.0) ?max_frame f =
  let config =
    {
      Server.default_config with
      Server.port = 0;
      workers;
      queue_bound;
      cost_bound;
      quota_rate;
      quota_burst;
      max_frame = Option.value ~default:Frame.max_frame_default max_frame;
    }
  in
  let server = Server.create ~config () in
  let loop = Domain.spawn (fun () -> Server.serve server) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Domain.join loop)
    (fun () -> f server)

let with_client server f =
  let client = Client.connect ~host:"127.0.0.1" ~port:(Server.port server) () in
  Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

let call client req =
  match Client.call ~timeout_s:60.0 client req with
  | Ok r -> r
  | Error e -> Alcotest.failf "rpc failed: %s" e

let submit client line =
  match call client (Protocol.Submit { spec_line = line }) with
  | Protocol.Result { resp = Protocol.Accepted { job }; _ } -> job
  | Protocol.Error { message; _ } -> Alcotest.failf "submission rejected: %s" message
  | _ -> Alcotest.fail "unexpected response to submit"

let get_stats client =
  match call client Protocol.Stats with
  | Protocol.Result { resp = Protocol.Stats_r s; _ } -> s
  | _ -> Alcotest.fail "unexpected response to stats"

(* Poll the daemon until the worker has claimed everything queued ahead —
   makes queue-occupancy tests deterministic. *)
let wait_worker_busy client =
  let watch = Cpla_util.Timer.wall () in
  let rec go () =
    let s = get_stats client in
    if s.Protocol.running >= 1 && s.Protocol.pending = 0 then ()
    else if Cpla_util.Timer.elapsed_s watch > 30.0 then
      Alcotest.fail "worker never claimed the job"
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

(* Drain the connection's event stream until every job in [jobs] has a
   terminal event; returns the connection's terminal cache by job id.
   (Unlike Client.await_terminal, nothing is discarded — terminals of
   other jobs are cached too, so any arrival order and any await order
   are fine.) *)
let collect_terminals ?got client jobs =
  let got = match got with Some tbl -> tbl | None -> Hashtbl.create 8 in
  let missing () = List.exists (fun j -> not (Hashtbl.mem got j)) jobs in
  let rec go () =
    if missing () then
      match Client.recv ~timeout_s:60.0 client with
      | Error e -> Alcotest.failf "stream failed: %s" e
      | Ok (Protocol.Ev ev) ->
          (if Protocol.is_terminal_state ev.Protocol.state then
             match Protocol.terminal_of_event ev with
             | Ok t -> Hashtbl.replace got ev.Protocol.job t
             | Error e -> Alcotest.failf "bad terminal event: %s" e);
          go ()
      | Ok (Protocol.Resp _) -> go ()
  in
  go ();
  got

let run_one_reference line =
  match Job.parse_manifest line with
  | Ok [ spec ] -> Cpla_serve.Scheduler.run_one spec
  | Ok _ | Error _ -> Alcotest.failf "reference spec failed to parse: %s" line

(* ---- tests ----------------------------------------------------------------- *)

(* The acceptance bar: under multi-connection load, every accepted job's
   wire result is byte-identical to the sequential reference (float fields
   compared on their bit patterns via the %.17g wire round-trip). *)
let test_multi_connection_byte_identical () =
  let lines =
    [
      small_line ~ratio:0.01 ~iters:1 ();
      small_line ~ratio:0.02 ~iters:2 ();
      small_line ~ratio:0.03 ~iters:1 ();
    ]
  in
  with_server ~workers:2 @@ fun server ->
  with_client server @@ fun a ->
  with_client server @@ fun b ->
  (* interleave submissions across the two connections *)
  let ja = List.map (fun l -> (submit a l, l)) lines in
  let jb = List.map (fun l -> (submit b l, l)) lines in
  let ta = collect_terminals a (List.map fst ja) in
  let tb = collect_terminals b (List.map fst jb) in
  let check_client terminals jobs =
    List.iter
      (fun (job, line) ->
        match (Hashtbl.find terminals job, run_one_reference line) with
        | Job.Done wire, Job.Done ref_ ->
            Alcotest.(check bool)
              (Printf.sprintf "job %d matches the sequential reference" job)
              true
              (Job.same_result wire ref_
              && Int64.equal (Int64.bits_of_float wire.Job.avg_tcp)
                   (Int64.bits_of_float ref_.Job.avg_tcp)
              && Int64.equal (Int64.bits_of_float wire.Job.max_tcp)
                   (Int64.bits_of_float ref_.Job.max_tcp))
        | wire, _ ->
            Alcotest.failf "job %d settled %s, want done" job (Job.status_string wire))
      jobs
  in
  check_client ta ja;
  check_client tb jb

let test_queue_bound_sheds () =
  with_server ~workers:1 ~queue_bound:1 @@ fun server ->
  with_client server @@ fun c ->
  let j0 = submit c (slow_line ()) in
  wait_worker_busy c;
  let j1 = submit c (small_line ()) in
  (* queue is now at its bound: the next submission sheds, it does not fail *)
  (match call c (Protocol.Submit { spec_line = small_line () }) with
  | Protocol.Error { code = Protocol.Shed Protocol.Queue_full; _ } -> ()
  | Protocol.Error _ -> Alcotest.fail "expected a queue-full shed"
  | Protocol.Result _ -> Alcotest.fail "expected the submission to shed");
  let s = get_stats c in
  Alcotest.(check int) "shed counted" 1 s.Protocol.shed;
  (* the queued job can be revoked; the running one settles normally *)
  (match call c (Protocol.Cancel { job = j1 }) with
  | Protocol.Result { resp = Protocol.Cancel_r { won = true; _ }; _ } -> ()
  | _ -> Alcotest.fail "cancel of a queued job must win");
  let terminals = collect_terminals c [ j0; j1 ] in
  (match Hashtbl.find terminals j1 with
  | Job.Cancelled _ -> ()
  | t -> Alcotest.failf "queued-then-cancelled job settled %s" (Job.status_string t));
  match Hashtbl.find terminals j0 with
  | Job.Done _ -> ()
  | t -> Alcotest.failf "running job settled %s" (Job.status_string t)

(* expected_cost-based admission: the queued cost budget sheds before the
   queue-depth bound does. *)
let test_cost_bound_sheds () =
  let line = slow_line () in
  let cost =
    match Job.parse_manifest line with
    | Ok [ spec ] -> Cpla_serve.Scheduler.expected_cost spec
    | _ -> Alcotest.fail "fixture spec failed to parse"
  in
  Alcotest.(check bool) "file fixtures have a positive expected cost" true (cost > 0.0);
  with_server ~workers:1 ~queue_bound:64 ~cost_bound:(1.5 *. cost) @@ fun server ->
  with_client server @@ fun c ->
  let j0 = submit c line in
  wait_worker_busy c;
  (* one queued job fits the cost budget (c <= 1.5c), a second does not
     (2c > 1.5c) — well before the 64-deep queue bound *)
  let j1 = submit c line in
  (match call c (Protocol.Submit { spec_line = line }) with
  | Protocol.Error { code = Protocol.Shed Protocol.Cost_bound; _ } -> ()
  | _ -> Alcotest.fail "expected a cost-bound shed");
  (match call c (Protocol.Cancel { job = j1 }) with
  | Protocol.Result { resp = Protocol.Cancel_r { won = true; _ }; _ } -> ()
  | _ -> Alcotest.fail "cancel of the queued job must win");
  ignore (collect_terminals c [ j0; j1 ])

let test_quota_sheds () =
  with_server ~workers:1 ~quota_rate:0.001 ~quota_burst:2.0 @@ fun server ->
  with_client server @@ fun c ->
  let j0 = submit c (small_line ()) in
  let j1 = submit c (small_line ()) in
  (* bucket of 2 is empty and refills at 1 token per ~17 minutes *)
  (match call c (Protocol.Submit { spec_line = small_line () }) with
  | Protocol.Error { code = Protocol.Shed Protocol.Quota; _ } -> ()
  | _ -> Alcotest.fail "expected a quota shed");
  (* quota only guards submissions: the stream and other methods still work *)
  let terminals = collect_terminals c [ j0; j1 ] in
  Alcotest.(check int) "accepted jobs settled" 2 (Hashtbl.length terminals);
  (* a second connection has its own bucket *)
  with_client server @@ fun d ->
  let j2 = submit d (small_line ()) in
  ignore (collect_terminals d [ j2 ])

let test_cancel_running_job () =
  with_server ~workers:1 @@ fun server ->
  with_client server @@ fun c ->
  let job = submit c (slow_line ()) in
  wait_worker_busy c;
  (match call c (Protocol.Cancel { job }) with
  | Protocol.Result { resp = Protocol.Cancel_r { won = true; _ }; _ } -> ()
  | _ -> Alcotest.fail "cancel of a running job must win");
  let terminals = collect_terminals c [ job ] in
  (match Hashtbl.find terminals job with
  | Job.Cancelled _ -> ()
  | t -> Alcotest.failf "cancelled job settled %s" (Job.status_string t));
  (* cancelling a settled job loses *)
  match call c (Protocol.Cancel { job }) with
  | Protocol.Result { resp = Protocol.Cancel_r { won = false; _ }; _ } -> ()
  | _ -> Alcotest.fail "cancel of a settled job must lose"

(* ---- malformed input over a raw socket ------------------------------------- *)

let raw_connect server =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
  fd

let raw_send fd payload =
  let b = Frame.encode payload in
  let rec go off =
    if off < Bytes.length b then go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let raw_recv fd dec =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Frame.next dec with
    | Some (Frame.Frame payload) -> (
        match Json.parse payload with
        | Ok v -> v
        | Error e -> Alcotest.failf "server sent invalid JSON: %s" e)
    | Some (Frame.Oversized _) -> Alcotest.fail "server sent an oversized frame"
    | None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> Alcotest.fail "server closed the connection"
        | n ->
            Frame.feed dec buf ~off:0 ~len:n;
            go ())
  in
  go ()

let error_code v =
  match Json.member "error" v with
  | Some err -> (
      match Option.bind (Json.member "code" err) Json.as_string with
      | Some c -> c
      | None -> Alcotest.fail "error response without code")
  | None -> Alcotest.fail "expected an error response"

let test_malformed_frames_survive () =
  with_server ~max_frame:1024 @@ fun server ->
  let fd = raw_connect server in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let dec = Frame.decoder () in
  (* invalid JSON: error response, connection stays up *)
  raw_send fd "{not json";
  Alcotest.(check string) "invalid JSON is bad-request" "bad-request"
    (error_code (raw_recv fd dec));
  (* valid JSON, not a request *)
  raw_send fd "{\"id\":1}";
  Alcotest.(check string) "method-less object is bad-request" "bad-request"
    (error_code (raw_recv fd dec));
  (* unknown method *)
  raw_send fd "{\"id\":2,\"method\":\"frobnicate\"}";
  Alcotest.(check string) "unknown method code" "unknown-method"
    (error_code (raw_recv fd dec));
  (* oversized frame: reported, payload discarded, stream resynchronises *)
  raw_send fd (String.make 2048 'x');
  Alcotest.(check string) "oversized frame is bad-request" "bad-request"
    (error_code (raw_recv fd dec));
  (* the same connection still answers real requests *)
  raw_send fd "{\"id\":3,\"method\":\"ping\"}";
  let v = raw_recv fd dec in
  match Json.member "result" v with
  | Some _ -> ()
  | None -> Alcotest.fail "connection must survive malformed frames"

let test_graceful_drain () =
  let config = { Server.default_config with Server.port = 0; workers = 1 } in
  let server = Server.create ~config () in
  let loop = Domain.spawn (fun () -> Server.serve server) in
  with_client server @@ fun c ->
  let job = submit c (slow_line ()) in
  wait_worker_busy c;
  Server.shutdown server;
  (* wait until the event loop has observed the stop flag: stats keeps
     answering during the drain and reports it *)
  let watch = Cpla_util.Timer.wall () in
  let rec wait_draining () =
    if not (get_stats c).Protocol.draining then
      if Cpla_util.Timer.elapsed_s watch > 30.0 then
        Alcotest.fail "server never started draining"
      else begin
        Unix.sleepf 0.005;
        wait_draining ()
      end
  in
  wait_draining ();
  (* draining: new submissions shed, in-flight jobs settle and their
     terminal events still reach the client before the server exits *)
  (match call c (Protocol.Submit { spec_line = small_line () }) with
  | Protocol.Error { code = Protocol.Shed Protocol.Draining; _ } -> ()
  | _ -> Alcotest.fail "expected a draining shed");
  let terminals = collect_terminals c [ job ] in
  (match Hashtbl.find terminals job with
  | Job.Done _ -> ()
  | t -> Alcotest.failf "in-flight job settled %s during drain" (Job.status_string t));
  Domain.join loop;
  match Client.recv ~timeout_s:10.0 c with
  | Error _ -> ()  (* socket closed after the drain *)
  | Ok (Protocol.Ev _) | Ok (Protocol.Resp _) -> (
      (* residual buffered frame; the close must follow *)
      match Client.recv ~timeout_s:10.0 c with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "server kept talking after drain")

let suite =
  [
    Alcotest.test_case "daemon: multi-connection results == run_one (byte-identical)"
      `Slow test_multi_connection_byte_identical;
    Alcotest.test_case "daemon: queue bound sheds, queued job cancellable" `Slow
      test_queue_bound_sheds;
    Alcotest.test_case "daemon: expected-cost bound sheds" `Slow test_cost_bound_sheds;
    Alcotest.test_case "daemon: per-client quota sheds" `Slow test_quota_sheds;
    Alcotest.test_case "daemon: cancel of a running job" `Slow test_cancel_running_job;
    Alcotest.test_case "daemon: malformed frames answered, connection survives" `Quick
      test_malformed_frames_survive;
    Alcotest.test_case "daemon: SIGTERM-style drain settles in-flight work" `Slow
      test_graceful_drain;
  ]
