(* Fixture tests for the cpla-lint static analyzer: each rule gets at least
   one snippet proving it fires (with the exact rule-id and line) and one
   proving [@cpla.allow "rule-id"] silences it. *)

module Engine = Cpla_lint.Engine
module Finding = Cpla_lint.Finding
module Report = Cpla_lint.Report
module Rule = Cpla_lint.Rule

let hits ?(filename = "lib/fixture/snippet.ml") ?has_mli src =
  List.map
    (fun (f : Finding.t) -> (f.Finding.rule, f.Finding.line))
    (Engine.lint_string ?has_mli ~filename src)

let check ?filename ?has_mli name src expected =
  Alcotest.(check (list (pair string int))) name expected (hits ?filename ?has_mli src)

(* ---- top-mutable ---------------------------------------------------------- *)

let test_top_mutable_fires () =
  check "hashtbl" "let cache = Hashtbl.create 16\n" [ ("top-mutable", 1) ];
  check "ref" "let count = ref 0\n" [ ("top-mutable", 1) ];
  check "buffer under let-in" "let buf = let n = 64 in Buffer.create n\n"
    [ ("top-mutable", 1) ];
  check "mutable record literal"
    "type t = { mutable state : int }\nlet global = { state = 0 }\n"
    [ ("top-mutable", 2) ];
  check "nested module" "module M = struct\n  let q = Queue.create ()\nend\n"
    [ ("top-mutable", 2) ]

let test_top_mutable_clean () =
  check "atomic is fine" "let count = Atomic.make 0\n" [];
  check "function-local is fine" "let f () = Hashtbl.create 16\n" [];
  check "immutable record is fine" "type t = { state : int }\nlet global = { state = 0 }\n"
    [];
  check "lazy is fine" "let t = lazy (Buffer.create 64)\n" [];
  check ~filename:"bin/tool.ml" "bin is out of scope" "let cache = Hashtbl.create 16\n" []

let test_top_mutable_allow () =
  check "expression allow" "let cache = (Hashtbl.create 16) [@cpla.allow \"top-mutable\"]\n"
    [];
  check "binding allow" "let count = ref 0 [@cpla.allow \"top-mutable\"]\n" []

(* ---- ambient-random ------------------------------------------------------- *)

let test_ambient_random () =
  check "self_init" "let f () = Random.self_init ()\n" [ ("ambient-random", 1) ];
  check "stdlib-qualified" "let f () = Stdlib.Random.int 5\n" [ ("ambient-random", 1) ];
  check "allow" "let f () = (Random.int 5) [@cpla.allow \"ambient-random\"]\n" [];
  check "util rng is fine" "let f rng = Cpla_util.Rng.int rng 5\n" []

(* ---- wall-clock ----------------------------------------------------------- *)

let test_wall_clock () =
  check "gettimeofday" "let f () = Unix.gettimeofday ()\n" [ ("wall-clock", 1) ];
  check "sys time" "let f () = Sys.time ()\n" [ ("wall-clock", 1) ];
  check ~filename:"lib/util/timer.ml" "timer is the sanctioned site"
    "let read () = Unix.gettimeofday ()\n" [];
  check "allow" "let f () = (Sys.time ()) [@cpla.allow \"wall-clock\"]\n" []

(* ---- float-equality ------------------------------------------------------- *)

let test_float_equality () =
  check ~filename:"lib/numeric/snippet.ml" "literal operand" "let f x = x <> 0.0\n"
    [ ("float-equality", 1) ];
  check ~filename:"lib/timing/snippet.ml" "float fn operand"
    "let f a b = Float.abs a = sqrt b\n" [ ("float-equality", 1) ];
  check ~filename:"lib/sdp/snippet.ml" "physical equality" "let f x = x == 1.5\n"
    [ ("float-equality", 1) ];
  check ~filename:"lib/numeric/snippet.ml" "untyped compare not flagged"
    "let f a b = a = b\n" [];
  check ~filename:"lib/route/snippet.ml" "outside numeric scope" "let f x = x = 0.0\n" [];
  check ~filename:"lib/numeric/snippet.ml" "allow"
    "let f x = (x = 1.0) [@cpla.allow \"float-equality\"]\n" []

(* ---- obj-magic ------------------------------------------------------------ *)

let test_obj_magic () =
  check "fires" "let f x = Obj.magic x\n" [ ("obj-magic", 1) ];
  check "allow" "let f x = (Obj.magic x : int) [@cpla.allow \"obj-magic\"]\n" []

(* ---- exit-scope ----------------------------------------------------------- *)

let test_exit_scope () =
  check "lib fires" "let f () = exit 1\n" [ ("exit-scope", 1) ];
  check ~filename:"bench/main.ml" "bench fires" "let f () = exit 1\n"
    [ ("exit-scope", 1) ];
  check ~filename:"bin/cpla_cli.ml" "bin is fine" "let () = exit 0\n" [];
  check "allow" "let f () = (exit 1) [@cpla.allow \"exit-scope\"]\n" []

(* ---- stdout-print --------------------------------------------------------- *)

let test_stdout_print () =
  check "printf fires" "let f () = Printf.printf \"x\"\n" [ ("stdout-print", 1) ];
  check "print_endline fires" "let f () = print_endline \"x\"\n" [ ("stdout-print", 1) ];
  check ~filename:"lib/util/table.ml" "table is sanctioned"
    "let f () = print_string \"x\"\n" [];
  check ~filename:"lib/serve/report.ml" "report is sanctioned"
    "let f () = print_string \"x\"\n" [];
  check ~filename:"bench/main.ml" "outside lib/" "let f () = Printf.printf \"x\"\n" [];
  check "eprintf is fine" "let f () = Printf.eprintf \"x\"\n" [];
  check "sprintf is fine" "let f () = Printf.sprintf \"x\"\n" [];
  check "file-level allow"
    "[@@@cpla.allow \"stdout-print\"]\nlet f () = Printf.printf \"x\"\n" []

(* ---- catchall-async ------------------------------------------------------- *)

let test_catchall_async () =
  check "wildcard fires" "let f g = try g () with _ -> 0\n" [ ("catchall-async", 1) ];
  check "named without reraise fires" "let f g = try g () with e -> ignore e; 0\n"
    [ ("catchall-async", 1) ];
  check "match-exception fires" "let f g = match g () with x -> x | exception e -> ignore e; 0\n"
    [ ("catchall-async", 1) ];
  check "raise passes" "let f g = try g () with e -> raise e\n" [];
  check "reraise_if_async passes"
    "let f g = try g () with e -> Cpla_util.Exn.reraise_if_async e; 0\n" [];
  check "specific exception passes" "let f g = try g () with Not_found -> 0\n" [];
  check "allow on handler body" "let f g = try g () with e -> (ignore e; 0) [@cpla.allow \"catchall-async\"]\n"
    [];
  check "allow on whole try" "let f g = (try g () with _ -> 0) [@cpla.allow \"catchall-async\"]\n"
    []

(* ---- missing-mli ---------------------------------------------------------- *)

let test_missing_mli () =
  check ~has_mli:false "lib fires" "let x = 1\n" [ ("missing-mli", 0) ];
  check ~has_mli:true "with mli is fine" "let x = 1\n" [];
  check ~filename:"bin/tool.ml" ~has_mli:false "bin is exempt" "let x = 1\n" [];
  check ~has_mli:false "file-level allow" "[@@@cpla.allow \"missing-mli\"]\nlet x = 1\n" []

(* ---- unknown-allow -------------------------------------------------------- *)

let test_unknown_allow () =
  check "typo fires" "let f x = (x + 1) [@cpla.allow \"no-such-rule\"]\n"
    [ ("unknown-allow", 1) ];
  check "malformed payload fires" "let f x = (x + 1) [@cpla.allow]\n"
    [ ("unknown-allow", 1) ];
  check "self-suppression"
    "let f x = ((x + 1) [@cpla.allow \"no-such-rule\"]) [@cpla.allow \"unknown-allow\"]\n"
    [];
  check "multi-id payload silences several"
    "let f x = (exit (Obj.magic x)) [@cpla.allow \"obj-magic exit-scope\"]\n" []

(* ---- parse-error ---------------------------------------------------------- *)

let test_parse_error () =
  check "syntax error" "let let = 3\n" [ ("parse-error", 0) ]

(* ---- engine / report ------------------------------------------------------ *)

let test_ordering () =
  check "two findings sorted by line" "let f x = Obj.magic x\nlet g () = exit 1\n"
    [ ("obj-magic", 1); ("exit-scope", 2) ]

let test_registry () =
  Alcotest.(check bool) ">= 8 rules" true (List.length Rule.all >= 8);
  List.iter
    (fun (r : Rule.t) ->
      Alcotest.(check bool) ("known " ^ r.Rule.id) true (Rule.known r.Rule.id))
    Rule.all;
  Alcotest.(check bool) "unknown id" false (Rule.known "definitely-not-a-rule")

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_json_report () =
  let findings =
    Engine.lint_string ~filename:"lib/fixture/snippet.ml" "let f x = Obj.magic x\n"
  in
  let s = Format.asprintf "%a" (fun fmt -> Report.json fmt) findings in
  Alcotest.(check bool) "has rule" true (contains s "\"rule\":\"obj-magic\"");
  Alcotest.(check bool) "has file" true (contains s "\"file\":\"lib/fixture/snippet.ml\"");
  Alcotest.(check bool) "has count" true (contains s "\"count\":1");
  let escaped =
    Format.asprintf "%a"
      (fun fmt -> Report.json fmt)
      [ Finding.file_level ~file:"a\"b.ml" ~rule:"parse-error" ~msg:"x\ny" ]
  in
  Alcotest.(check bool) "escapes quote" true (contains escaped "a\\\"b.ml");
  Alcotest.(check bool) "escapes newline" true (contains escaped "x\\ny")

let test_human_report () =
  let findings =
    Engine.lint_string ~filename:"lib/fixture/snippet.ml" "let f x = Obj.magic x\n"
  in
  let s = Format.asprintf "%a" (fun fmt -> Report.human fmt) findings in
  Alcotest.(check bool) "diagnostic line" true
    (contains s "lib/fixture/snippet.ml:1: [obj-magic]");
  Alcotest.(check bool) "summary" true (contains s "cpla-lint: 1 finding")

(* An unreadable file (here: a dangling symlink, which readdir lists but
   stat/open fail on) must surface as a file-level [read-error] finding
   while the rest of the tree is still linted. *)
let test_read_error () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cpla-lint-read-error-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let good = Filename.concat dir "good.ml" in
      let oc = open_out good in
      output_string oc "let f x = Obj.magic x\n";
      close_out oc;
      Unix.symlink (Filename.concat dir "nowhere.ml") (Filename.concat dir "bad.ml");
      let findings, _ = Engine.lint_paths ~context:[] [ dir ] in
      let rules = List.map (fun (f : Finding.t) -> f.Finding.rule) findings in
      Alcotest.(check bool) "read-error reported" true (List.mem "read-error" rules);
      Alcotest.(check bool) "good file still linted" true (List.mem "obj-magic" rules);
      match
        List.find_opt (fun (f : Finding.t) -> f.Finding.rule = "read-error") findings
      with
      | Some f ->
          Alcotest.(check bool) "finding names the symlink" true
            (contains f.Finding.file "bad.ml")
      | None -> Alcotest.fail "no read-error finding")

let suite =
  [
    Alcotest.test_case "top-mutable fires" `Quick test_top_mutable_fires;
    Alcotest.test_case "top-mutable clean" `Quick test_top_mutable_clean;
    Alcotest.test_case "top-mutable allow" `Quick test_top_mutable_allow;
    Alcotest.test_case "ambient-random" `Quick test_ambient_random;
    Alcotest.test_case "wall-clock" `Quick test_wall_clock;
    Alcotest.test_case "float-equality" `Quick test_float_equality;
    Alcotest.test_case "obj-magic" `Quick test_obj_magic;
    Alcotest.test_case "exit-scope" `Quick test_exit_scope;
    Alcotest.test_case "stdout-print" `Quick test_stdout_print;
    Alcotest.test_case "catchall-async" `Quick test_catchall_async;
    Alcotest.test_case "missing-mli" `Quick test_missing_mli;
    Alcotest.test_case "unknown-allow" `Quick test_unknown_allow;
    Alcotest.test_case "parse-error" `Quick test_parse_error;
    Alcotest.test_case "finding ordering" `Quick test_ordering;
    Alcotest.test_case "rule registry" `Quick test_registry;
    Alcotest.test_case "json report" `Quick test_json_report;
    Alcotest.test_case "human report" `Quick test_human_report;
    Alcotest.test_case "read-error keeps linting" `Quick test_read_error;
  ]
