open Cpla_route
open Cpla_timing
open Cpla

let pin px py = { Net.px; py; pl = 0 }

(* ---- Partition -------------------------------------------------------------- *)

let mk_items pts = List.mapi (fun i (x, y) -> { Partition.net = 0; seg = i; mid = (x, y) }) pts

let all_items leaves = List.concat_map (fun l -> l.Partition.items) leaves

let test_partition_covers_all () =
  let items = mk_items [ (0, 0); (5, 5); (10, 10); (63, 63); (31, 32); (12, 40) ] in
  let leaves = Partition.build ~width:64 ~height:64 ~k:4 ~max_segments:2 items in
  let got = all_items leaves in
  Alcotest.(check int) "every item in exactly one leaf" (List.length items) (List.length got);
  let ids = List.sort compare (List.map (fun i -> i.Partition.seg) got) in
  Alcotest.(check (list int)) "ids preserved" [ 0; 1; 2; 3; 4; 5 ] ids

let test_partition_bound_respected () =
  let rng = Cpla_util.Rng.create 3 in
  let items =
    List.init 200 (fun i ->
        { Partition.net = 0; seg = i; mid = (Cpla_util.Rng.int rng 64, Cpla_util.Rng.int rng 64) })
  in
  let leaves = Partition.build ~width:64 ~height:64 ~k:4 ~max_segments:10 items in
  List.iter
    (fun l ->
      let n = List.length l.Partition.items in
      let single_tile = l.Partition.x1 <= l.Partition.x0 && l.Partition.y1 <= l.Partition.y0 in
      Alcotest.(check bool) "bound or single tile" true (n <= 10 || single_tile))
    leaves

let test_partition_items_inside_leaf () =
  let rng = Cpla_util.Rng.create 7 in
  let items =
    List.init 100 (fun i ->
        { Partition.net = 0; seg = i; mid = (Cpla_util.Rng.int rng 48, Cpla_util.Rng.int rng 48) })
  in
  let leaves = Partition.build ~width:48 ~height:48 ~k:5 ~max_segments:5 items in
  List.iter
    (fun l ->
      List.iter
        (fun it ->
          let x, y = it.Partition.mid in
          Alcotest.(check bool) "inside bounds" true
            (x >= l.Partition.x0 && x <= l.Partition.x1 && y >= l.Partition.y0
            && y <= l.Partition.y1))
        l.Partition.items)
    leaves

let test_partition_hotspot_subdivides () =
  (* all items at one tile region: quadtree must not loop forever and leaves
     may exceed the bound only at single tiles *)
  let items = List.init 50 (fun i -> { Partition.net = 0; seg = i; mid = (3, 3) }) in
  let leaves = Partition.build ~width:64 ~height:64 ~k:2 ~max_segments:4 items in
  Alcotest.(check int) "all items in leaves" 50 (List.length (all_items leaves))

let test_partition_deterministic () =
  let items = mk_items [ (1, 1); (2, 2); (3, 3); (40, 40) ] in
  let a = Partition.build ~width:48 ~height:48 ~k:3 ~max_segments:1 items in
  let b = Partition.build ~width:48 ~height:48 ~k:3 ~max_segments:1 items in
  Alcotest.(check int) "same leaf count" (List.length a) (List.length b)

let partition_coverage_property =
  QCheck.Test.make ~name:"partition is a cover for random items" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 0 80) (pair (int_bound 47) (int_bound 47)))
    (fun pts ->
      let items = mk_items pts in
      let leaves = Partition.build ~width:48 ~height:48 ~k:4 ~max_segments:6 items in
      List.length (all_items leaves) = List.length items)

(* ---- end-to-end fixtures ------------------------------------------------------ *)

let build_design ?(w = 32) ?(nets = 600) ?(cap = 8) ?(seed = 11) () =
  let spec =
    {
      Synth.default_spec with
      Synth.width = w;
      height = w;
      num_nets = nets;
      capacity = cap;
      seed;
      mean_extra_pins = 2.0;
    }
  in
  let graph, net_arr = Synth.generate spec in
  let routed = Router.route_all ~graph net_arr in
  let asg = Assignment.create ~graph ~nets:net_arr ~trees:routed.Router.trees in
  Init_assign.run asg;
  asg

let build_infos asg released =
  let infos = Hashtbl.create 16 in
  Array.iter (fun n -> Hashtbl.replace infos n (Critical.path_info asg n)) released;
  Hashtbl.find infos

let released_items asg released =
  Array.to_list released
  |> List.concat_map (fun net ->
         Array.to_list
           (Array.mapi
              (fun seg s -> { Partition.net; seg; mid = Segment.midpoint s })
              (Assignment.segments asg net)))

(* ---- Formulation ---------------------------------------------------------------- *)

let test_formulation_shape () =
  let asg = build_design () in
  let released = Critical.select asg ~ratio:0.01 in
  let infos = build_infos asg released in
  let items = released_items asg released in
  List.iter (fun it -> Assignment.unassign asg ~net:it.Partition.net ~seg:it.Partition.seg) items;
  let f = Formulation.build asg ~infos ~items in
  Alcotest.(check int) "one var per item" (List.length items) (Formulation.var_count f);
  Alcotest.(check bool) "pairs exist on multi-segment nets" true
    (Array.length f.Formulation.pairs > 0);
  Array.iter
    (fun (v : Formulation.var) ->
      Alcotest.(check bool) "candidates non-empty" true (Array.length v.Formulation.cands > 0);
      Array.iter
        (fun ts -> Alcotest.(check bool) "ts finite positive" true (ts > 0.0 && Float.is_finite ts))
        v.Formulation.ts)
    f.Formulation.vars;
  Array.iter
    (fun (p : Formulation.pair) ->
      Alcotest.(check bool) "tv zero on diagonal-equal layers" true
        (Array.for_all (fun row -> Array.for_all (fun tv -> tv >= 0.0) row) p.Formulation.tv))
    f.Formulation.pairs

let test_formulation_requires_unassigned () =
  let asg = build_design () in
  let released = Critical.select asg ~ratio:0.01 in
  let infos = build_infos asg released in
  let items = released_items asg released in
  Alcotest.(check bool) "rejects assigned segments" true
    (match Formulation.build asg ~infos ~items with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_formulation_ts_prefers_high_layer_for_long () =
  (* a long critical segment must have lower ts on a higher layer *)
  let asg = build_design () in
  let released = Critical.select asg ~ratio:0.005 in
  let infos = build_infos asg released in
  let items = released_items asg released in
  List.iter (fun it -> Assignment.unassign asg ~net:it.Partition.net ~seg:it.Partition.seg) items;
  let f = Formulation.build asg ~infos ~items in
  (* ts folds in boundary-via coupling, so a neighbour frozen on a low
     layer can locally favour staying low; the trend must still hold for
     the majority of long segments *)
  let checked = ref 0 and high_wins = ref 0 in
  Array.iter
    (fun (v : Formulation.var) ->
      let seg = (Assignment.segments asg v.Formulation.net).(v.Formulation.seg) in
      let n = Array.length v.Formulation.cands in
      if seg.Segment.len >= 6 && n >= 2 then begin
        incr checked;
        if v.Formulation.ts.(n - 1) < v.Formulation.ts.(0) then incr high_wins
      end)
    f.Formulation.vars;
  Alcotest.(check bool) "checked at least one long segment" true (!checked > 0);
  Alcotest.(check bool) "high layer wins for most long segments" true
    (2 * !high_wins >= !checked)

(* ---- Ilp_method / Sdp_method ----------------------------------------------------- *)

let leaf_formulations asg released =
  let infos = build_infos asg released in
  let items = released_items asg released in
  let graph = Assignment.graph asg in
  let leaves =
    Partition.build
      ~width:(Cpla_grid.Graph.width graph)
      ~height:(Cpla_grid.Graph.height graph)
      ~k:4 ~max_segments:8 items
  in
  List.map
    (fun leaf ->
      List.iter
        (fun it -> Assignment.unassign asg ~net:it.Partition.net ~seg:it.Partition.seg)
        leaf.Partition.items;
      let f = Formulation.build asg ~infos ~items:leaf.Partition.items in
      (* re-assign to keep the state assigned for the next leaf *)
      Array.iter
        (fun (v : Formulation.var) ->
          Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg
            ~layer:v.Formulation.cands.(0))
        f.Formulation.vars;
      f)
    leaves

let test_ilp_model_valid () =
  let asg = build_design () in
  let released = Critical.select asg ~ratio:0.01 in
  let fs = leaf_formulations asg released in
  List.iter
    (fun f ->
      if Formulation.var_count f > 0 then begin
        let model = Ilp_method.build_model ~alpha:2000.0 f in
        (* every var contributes exactly one assignment row; check row count
           is at least vars *)
        Alcotest.(check bool) "rows >= vars" true
          (Array.length model.Cpla_ilp.Model.rows >= Formulation.var_count f)
      end)
    fs

let test_sdp_problem_wellformed () =
  let asg = build_design () in
  let released = Critical.select asg ~ratio:0.01 in
  let fs = leaf_formulations asg released in
  List.iter
    (fun f ->
      if Formulation.var_count f > 0 then begin
        let p, index = Sdp_method.build_problem f in
        Alcotest.(check bool) "dim covers candidates" true
          (p.Cpla_sdp.Problem.dim >= Formulation.candidate_total f);
        ignore (index 0 0)
      end)
    fs

let test_sdp_x_values_in_range () =
  let asg = build_design () in
  let released = Critical.select asg ~ratio:0.005 in
  let fs = leaf_formulations asg released in
  List.iter
    (fun f ->
      if Formulation.var_count f > 0 then begin
        let x = Sdp_method.solve ~options:Cpla_sdp.Solver.default_options f in
        Array.iteri
          (fun vi (v : Formulation.var) ->
            let sum = ref 0.0 in
            Array.iteri
              (fun ci _ ->
                let value = x vi ci in
                Alcotest.(check bool) "x in [0,1]" true (value >= 0.0 && value <= 1.0);
                sum := !sum +. value)
              v.Formulation.cands;
            (* the augmented Lagrangian is run to a loose tolerance: the
               post-mapping only needs a usable ranking *)
            Alcotest.(check bool) "sums near 1" true (Float.abs (!sum -. 1.0) < 0.5))
          f.Formulation.vars
      end)
    fs

(* ---- Post_map ------------------------------------------------------------------ *)

let test_post_map_respects_capacity () =
  (* two segments share one edge with capacity 1 per layer: post-map must
     not stack both on the same layer *)
  let tech = Cpla_grid.Tech.default ~num_layers:4 () in
  let graph =
    Cpla_grid.Graph.create ~tech ~width:8 ~height:8 ~layer_capacity:(Array.make 4 1)
  in
  let n0 = Net.create ~id:0 ~name:"a" ~pins:[| pin 0 0; pin 4 0 |] in
  let n1 = Net.create ~id:1 ~name:"b" ~pins:[| pin 0 0; pin 4 0 |] in
  let t () = Stree.of_edges ~root:(0, 0) [ ((0, 0), (4, 0)) ] in
  let asg = Assignment.create ~graph ~nets:[| n0; n1 |] ~trees:[| Some (t ()); Some (t ()) |] in
  let infos = Hashtbl.create 4 in
  (* fully assign first so path_info works, then release *)
  Assignment.set_layer asg ~net:0 ~seg:0 ~layer:0;
  Assignment.set_layer asg ~net:1 ~seg:0 ~layer:2;
  Hashtbl.replace infos 0 (Critical.path_info asg 0);
  Hashtbl.replace infos 1 (Critical.path_info asg 1);
  Assignment.unassign asg ~net:0 ~seg:0;
  Assignment.unassign asg ~net:1 ~seg:0;
  let items =
    [ { Partition.net = 0; seg = 0; mid = (2, 0) }; { Partition.net = 1; seg = 0; mid = (2, 0) } ]
  in
  let f = Formulation.build asg ~infos:(Hashtbl.find infos) ~items in
  (* both want the top layer *)
  Post_map.run asg ~vars:f.Formulation.vars ~x:(fun _ _ -> 0.9);
  let l0 = Assignment.layer asg ~net:0 ~seg:0 and l1 = Assignment.layer asg ~net:1 ~seg:0 in
  Alcotest.(check bool) "both assigned" true (l0 >= 0 && l1 >= 0);
  Alcotest.(check bool) "different layers" true (l0 <> l1);
  Alcotest.(check int) "no overflow" 0 (Cpla_grid.Graph.edge_overflow graph)

let test_post_map_prefers_high_x () =
  let asg = build_design ~nets:200 () in
  let released = Critical.select asg ~ratio:0.01 in
  let infos = build_infos asg released in
  let items = released_items asg released in
  List.iter (fun it -> Assignment.unassign asg ~net:it.Partition.net ~seg:it.Partition.seg) items;
  let f = Formulation.build asg ~infos ~items in
  (* x strongly favours the highest candidate of every var *)
  Post_map.run asg ~vars:f.Formulation.vars ~x:(fun vi ci ->
      let v = f.Formulation.vars.(vi) in
      if ci = Array.length v.Formulation.cands - 1 then 0.95 else 0.01);
  let total = Array.length f.Formulation.vars in
  let on_top = ref 0 in
  Array.iter
    (fun (v : Formulation.var) ->
      let l = Assignment.layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg in
      if l = v.Formulation.cands.(Array.length v.Formulation.cands - 1) then incr on_top)
    f.Formulation.vars;
  Alcotest.(check bool) "most vars on their top candidate" true
    (float_of_int !on_top >= 0.7 *. float_of_int total)

(* Regression for the ranking comparator: polymorphic [compare b a] left the
   order unspecified under NaN and broke value-ties by reversed construction
   order.  The total order must (a) survive NaN fractional values and still
   assign every variable, and (b) be a pure function of (value, index) so
   two identical designs map identically. *)
let test_post_map_nan_and_ties_deterministic () =
  let solve () =
    let asg = build_design ~nets:200 () in
    let released = Critical.select asg ~ratio:0.01 in
    let infos = build_infos asg released in
    let items = released_items asg released in
    List.iter
      (fun it -> Assignment.unassign asg ~net:it.Partition.net ~seg:it.Partition.seg)
      items;
    let f = Formulation.build asg ~infos ~items in
    (* every value is a NaN or a shared constant: worst case for the sort *)
    Post_map.run asg ~vars:f.Formulation.vars ~x:(fun vi _ ->
        if vi mod 3 = 0 then Float.nan else 0.5);
    Array.map
      (fun (v : Formulation.var) ->
        Assignment.layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg)
      f.Formulation.vars
  in
  let a = solve () and b = solve () in
  Alcotest.(check bool) "every variable assigned despite NaN" true
    (Array.for_all (fun l -> l >= 0) a);
  Alcotest.(check bool) "identical runs map identically" true (a = b)

let test_post_map_nan_ranks_last () =
  (* same two-segment contention as the capacity test, but net 0's value is
     NaN: net 1 must win the contested top layer *)
  let tech = Cpla_grid.Tech.default ~num_layers:4 () in
  let graph =
    Cpla_grid.Graph.create ~tech ~width:8 ~height:8 ~layer_capacity:(Array.make 4 1)
  in
  let n0 = Net.create ~id:0 ~name:"a" ~pins:[| pin 0 0; pin 4 0 |] in
  let n1 = Net.create ~id:1 ~name:"b" ~pins:[| pin 0 0; pin 4 0 |] in
  let t () = Stree.of_edges ~root:(0, 0) [ ((0, 0), (4, 0)) ] in
  let asg = Assignment.create ~graph ~nets:[| n0; n1 |] ~trees:[| Some (t ()); Some (t ()) |] in
  let infos = Hashtbl.create 4 in
  Assignment.set_layer asg ~net:0 ~seg:0 ~layer:0;
  Assignment.set_layer asg ~net:1 ~seg:0 ~layer:2;
  Hashtbl.replace infos 0 (Critical.path_info asg 0);
  Hashtbl.replace infos 1 (Critical.path_info asg 1);
  Assignment.unassign asg ~net:0 ~seg:0;
  Assignment.unassign asg ~net:1 ~seg:0;
  let items =
    [ { Partition.net = 0; seg = 0; mid = (2, 0) }; { Partition.net = 1; seg = 0; mid = (2, 0) } ]
  in
  let f = Formulation.build asg ~infos:(Hashtbl.find infos) ~items in
  let x vi _ =
    if f.Formulation.vars.(vi).Formulation.net = 0 then Float.nan else 0.9
  in
  Post_map.run asg ~vars:f.Formulation.vars ~x;
  let l0 = Assignment.layer asg ~net:0 ~seg:0 and l1 = Assignment.layer asg ~net:1 ~seg:0 in
  Alcotest.(check bool) "both assigned" true (l0 >= 0 && l1 >= 0);
  Alcotest.(check bool) "real value outranks NaN on the contested layer" true (l1 > l0)

let test_fallback_layer_picks_freest () =
  let asg = build_design ~nets:50 () in
  let released = Critical.select asg ~ratio:0.02 in
  let infos = build_infos asg released in
  let items = released_items asg released in
  List.iter (fun it -> Assignment.unassign asg ~net:it.Partition.net ~seg:it.Partition.seg) items;
  let f = Formulation.build asg ~infos ~items in
  Array.iter
    (fun (v : Formulation.var) ->
      let l = Post_map.fallback_layer asg v in
      Alcotest.(check bool) "fallback is a candidate" true (Array.mem l v.Formulation.cands))
    f.Formulation.vars;
  (* restore assignment for consistency *)
  Post_map.run asg ~vars:f.Formulation.vars ~x:(fun _ _ -> 0.5)

(* ---- Driver end-to-end ------------------------------------------------------------ *)

let test_driver_sdp_improves () =
  let asg = build_design ~w:32 ~nets:700 () in
  let released = Critical.select asg ~ratio:0.01 in
  let avg0, max0 = Critical.avg_max_tcp asg released in
  let rep = Driver.optimize_released asg ~released in
  Alcotest.(check bool) "avg improves" true (rep.Driver.avg_tcp <= avg0 +. 1e-9);
  Alcotest.(check bool) "max improves" true (rep.Driver.max_tcp <= max0 +. 1e-9);
  Alcotest.(check bool) "state consistent" true (Assignment.check_usage asg = Ok ());
  Alcotest.(check bool) "still fully assigned" true (Assignment.fully_assigned asg)

let test_driver_ilp_improves () =
  let asg = build_design ~w:32 ~nets:700 () in
  let released = Critical.select asg ~ratio:0.01 in
  let avg0, _ = Critical.avg_max_tcp asg released in
  let config = { Config.default with Config.method_ = Config.Ilp } in
  let rep = Driver.optimize_released ~config asg ~released in
  Alcotest.(check bool) "avg improves" true (rep.Driver.avg_tcp <= avg0 +. 1e-9);
  Alcotest.(check bool) "state consistent" true (Assignment.check_usage asg = Ok ())

let test_driver_sdp_close_to_ilp () =
  let mk () =
    let asg = build_design ~w:32 ~nets:700 ~seed:21 () in
    let released = Critical.select asg ~ratio:0.01 in
    (asg, released)
  in
  let asg_s, rel_s = mk () in
  let rep_s = Driver.optimize_released asg_s ~released:rel_s in
  let asg_i, rel_i = mk () in
  let config = { Config.default with Config.method_ = Config.Ilp } in
  let rep_i = Driver.optimize_released ~config asg_i ~released:rel_i in
  (* Fig. 7a/7b: SDP within a few percent of ILP *)
  Alcotest.(check bool) "avg within 10%" true
    (rep_s.Driver.avg_tcp <= rep_i.Driver.avg_tcp *. 1.10);
  Alcotest.(check bool) "max within 15%" true
    (rep_s.Driver.max_tcp <= rep_i.Driver.max_tcp *. 1.15)

let test_driver_no_edge_overflow_added () =
  let asg = build_design ~w:32 ~nets:700 () in
  let before = Cpla_grid.Graph.edge_overflow (Assignment.graph asg) in
  let released = Critical.select asg ~ratio:0.01 in
  ignore (Driver.optimize_released asg ~released);
  let after = Cpla_grid.Graph.edge_overflow (Assignment.graph asg) in
  Alcotest.(check bool) "edge overflow bounded" true (after <= before + 5)

let test_driver_requires_full_assignment () =
  let spec = { Synth.default_spec with Synth.num_nets = 50; width = 16; height = 16 } in
  let graph, nets = Synth.generate spec in
  let routed = Router.route_all ~graph nets in
  let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
  Alcotest.(check bool) "raises on unassigned" true
    (match Driver.optimize asg with exception Invalid_argument _ -> true | _ -> false)

let test_driver_empty_release () =
  let asg = build_design ~nets:100 () in
  let rep = Driver.optimize_released asg ~released:[||] in
  Alcotest.(check int) "no iterations" 0 rep.Driver.iterations

let test_metrics_measure () =
  let asg = build_design ~nets:150 () in
  let released = Critical.select asg ~ratio:0.02 in
  let m = Metrics.measure asg ~released ~cpu_s:1.5 in
  Alcotest.(check bool) "avg <= max" true (m.Metrics.avg_tcp <= m.Metrics.max_tcp);
  Alcotest.(check bool) "vias positive" true (m.Metrics.via_count > 0);
  Alcotest.(check (float 1e-9)) "cpu recorded" 1.5 m.Metrics.cpu_s

let suite =
  [
    Alcotest.test_case "partition covers all" `Quick test_partition_covers_all;
    Alcotest.test_case "partition bound respected" `Quick test_partition_bound_respected;
    Alcotest.test_case "partition items inside leaf" `Quick test_partition_items_inside_leaf;
    Alcotest.test_case "partition hotspot subdivides" `Quick test_partition_hotspot_subdivides;
    Alcotest.test_case "partition deterministic" `Quick test_partition_deterministic;
    QCheck_alcotest.to_alcotest partition_coverage_property;
    Alcotest.test_case "formulation shape" `Quick test_formulation_shape;
    Alcotest.test_case "formulation requires unassigned" `Quick test_formulation_requires_unassigned;
    Alcotest.test_case "ts prefers high layer for long segs" `Quick
      test_formulation_ts_prefers_high_layer_for_long;
    Alcotest.test_case "ilp model valid" `Quick test_ilp_model_valid;
    Alcotest.test_case "sdp problem wellformed" `Quick test_sdp_problem_wellformed;
    Alcotest.test_case "sdp x values in range" `Slow test_sdp_x_values_in_range;
    Alcotest.test_case "post-map respects capacity" `Quick test_post_map_respects_capacity;
    Alcotest.test_case "post-map prefers high x" `Quick test_post_map_prefers_high_x;
    Alcotest.test_case "post-map nan+tie determinism" `Quick
      test_post_map_nan_and_ties_deterministic;
    Alcotest.test_case "post-map nan ranks last" `Quick test_post_map_nan_ranks_last;
    Alcotest.test_case "fallback layer is a candidate" `Quick test_fallback_layer_picks_freest;
    Alcotest.test_case "driver sdp improves timing" `Slow test_driver_sdp_improves;
    Alcotest.test_case "driver ilp improves timing" `Slow test_driver_ilp_improves;
    Alcotest.test_case "driver sdp close to ilp" `Slow test_driver_sdp_close_to_ilp;
    Alcotest.test_case "driver keeps edges legal" `Slow test_driver_no_edge_overflow_added;
    Alcotest.test_case "driver requires full assignment" `Quick test_driver_requires_full_assignment;
    Alcotest.test_case "driver empty release" `Quick test_driver_empty_release;
    Alcotest.test_case "metrics measure" `Quick test_metrics_measure;
  ]
