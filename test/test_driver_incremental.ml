open Cpla_route
open Cpla_timing
open Cpla

(* Driver-level incrementality must be an optimisation, not a semantics
   change: with warm starts off, the dirty-partition loop commits layers
   bitwise identical to the from-scratch loop's, for any worker count and
   with the solve cache on or off.  Warm starts trade that identity for
   speed within score tolerance.  Plus the canonical-digest contract the
   solve cache keys on, and the convergence-loop regression fixtures
   (non-finite scores, discarded-sweep accounting). *)

let build_design ?(w = 24) ?(nets = 300) ?(cap = 8) ~seed () =
  let spec =
    {
      Synth.default_spec with
      Synth.width = w;
      height = w;
      num_nets = nets;
      capacity = cap;
      seed;
      mean_extra_pins = 2.0;
    }
  in
  let graph, net_arr = Synth.generate spec in
  let routed = Router.route_all ~graph net_arr in
  let asg = Assignment.create ~graph ~nets:net_arr ~trees:routed.Router.trees in
  Init_assign.run asg;
  asg

let layers_of asg =
  Array.init (Assignment.num_nets asg) (fun n ->
      Array.mapi
        (fun s _ -> Assignment.layer asg ~net:n ~seg:s)
        (Assignment.segments asg n))

let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs a)

(* ---- incremental ≡ from-scratch -------------------------------------------- *)

(* The core contract: over random designs, release sets (via the seed),
   sweep budgets, and worker counts, the incremental driver with warm
   starts off commits exactly the layers the from-scratch loop commits. *)
let equivalence_property =
  QCheck.Test.make ~name:"driver: incremental ≡ from-scratch layers (warm off)" ~count:5
    QCheck.(triple (int_range 0 9999) (int_range 1 4) (oneofl [ 1; 2; 3 ]))
    (fun (seed, iters, workers) ->
      let mk () =
        let asg = build_design ~seed () in
        let released = Critical.select asg ~ratio:0.02 in
        (asg, released)
      in
      let asg_a, rel_a = mk () in
      let asg_b, rel_b = mk () in
      if rel_a <> rel_b then QCheck.Test.fail_report "fixture is non-deterministic";
      let base =
        { Config.default with Config.warm_start = false; workers; max_outer_iters = iters }
      in
      let ra =
        Driver.optimize_released ~config:{ base with Config.incremental = false } asg_a
          ~released:rel_a
      in
      let rb =
        Driver.optimize_released ~config:{ base with Config.incremental = true } asg_b
          ~released:rel_b
      in
      layers_of asg_a = layers_of asg_b
      && close ra.Driver.avg_tcp rb.Driver.avg_tcp
      && close ra.Driver.max_tcp rb.Driver.max_tcp
      && Assignment.check_usage asg_b = Ok ())

(* A hit replays the stored cold-start solution, and with warm starts off
   every solve is a cold start — so the cache must be invisible in the
   committed layers, whether it is empty or shared with previous runs. *)
let cache_transparency_property =
  QCheck.Test.make ~name:"driver: solve cache invisible with warm starts off" ~count:4
    QCheck.(pair (int_range 0 9999) (oneofl [ 1; 2 ]))
    (fun (seed, workers) ->
      let mk () =
        let asg = build_design ~seed () in
        let released = Critical.select asg ~ratio:0.02 in
        (asg, released)
      in
      let config =
        { Config.default with Config.warm_start = false; workers; max_outer_iters = 3 }
      in
      let asg_a, rel_a = mk () in
      let _ = Driver.optimize_released ~config asg_a ~released:rel_a in
      let cache = Solve_cache.create () in
      let asg_b, rel_b = mk () in
      let _ = Driver.optimize_released ~config ~solve_cache:cache asg_b ~released:rel_b in
      (* an identical rebuilt design replays through the now-warm cache *)
      let asg_c, rel_c = mk () in
      let _ = Driver.optimize_released ~config ~solve_cache:cache asg_c ~released:rel_c in
      layers_of asg_a = layers_of asg_b && layers_of asg_a = layers_of asg_c)

(* Warm starts change solver iterates, never validity: the state stays
   consistent and the score lands within tolerance of the cold loop. *)
let warm_start_validity_property =
  QCheck.Test.make ~name:"driver: warm starts valid and within score tolerance" ~count:4
    QCheck.(int_range 0 9999)
    (fun seed ->
      let mk () =
        let asg = build_design ~seed () in
        let released = Critical.select asg ~ratio:0.02 in
        (asg, released)
      in
      let asg_cold, rel_cold = mk () in
      let cold =
        Driver.optimize_released
          ~config:{ Config.default with Config.warm_start = false; workers = 1 }
          asg_cold ~released:rel_cold
      in
      let asg_warm, rel_warm = mk () in
      let warm =
        Driver.optimize_released
          ~config:{ Config.default with Config.warm_start = true; workers = 1 }
          asg_warm ~released:rel_warm
      in
      Assignment.fully_assigned asg_warm
      && Assignment.check_usage asg_warm = Ok ()
      && warm.Driver.avg_tcp <= (cold.Driver.avg_tcp *. 1.10) +. 1e-9
      && warm.Driver.max_tcp <= (cold.Driver.max_tcp *. 1.15) +. 1e-9)

(* Deterministic cache fixture: a repeated identical run must actually hit
   (the property above only proves hits are harmless). *)
let test_cache_hits_on_repeat () =
  let mk () =
    let asg = build_design ~w:32 ~nets:600 ~seed:11 () in
    let released = Critical.select asg ~ratio:0.01 in
    (asg, released)
  in
  let config =
    { Config.default with Config.warm_start = false; workers = 1; max_outer_iters = 2 }
  in
  let cache = Solve_cache.create () in
  let asg_a, rel_a = mk () in
  let _ = Driver.optimize_released ~config ~solve_cache:cache asg_a ~released:rel_a in
  let misses_first = Solve_cache.misses cache in
  Alcotest.(check bool) "first run stores coupled solves" true
    (misses_first > 0 && Solve_cache.length cache > 0);
  let asg_b, rel_b = mk () in
  let _ = Driver.optimize_released ~config ~solve_cache:cache asg_b ~released:rel_b in
  Alcotest.(check bool) "identical rerun hits" true (Solve_cache.hits cache > 0);
  Alcotest.(check int) "identical rerun misses nothing new" misses_first
    (Solve_cache.misses cache);
  Alcotest.(check bool) "hit run commits the same layers" true
    (layers_of asg_a = layers_of asg_b)

(* ---- convergence-loop regressions ------------------------------------------- *)

(* An infinite sink load makes some Tcp infinite and the released-set
   average NaN (inf · 0 terms), so the loop's score goes non-finite.  NaN
   fails both orderings, and the loop used to fall through to "no
   improvement: stop" WITHOUT restoring, committing (and counting) a
   NaN-scored sweep.  Non-finite must be treated as a regression: restore
   and stop. *)
let test_nan_score_restores_and_does_not_count () =
  let spec =
    {
      Synth.default_spec with
      Synth.width = 16;
      height = 16;
      num_layers = 6;
      num_nets = 100;
      seed = 3;
      mean_extra_pins = 1.0;
      blockage_fraction = 0.0;
    }
  in
  let _, nets = Synth.generate spec in
  let tech =
    {
      (Cpla_grid.Tech.default ~num_layers:6 ()) with
      Cpla_grid.Tech.sink_c = Float.infinity;
    }
  in
  let graph =
    Cpla_grid.Graph.create ~tech ~width:16 ~height:16 ~layer_capacity:(Array.make 6 12)
  in
  let routed = Router.route_all ~graph nets in
  let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
  Init_assign.run asg;
  let released =
    Array.init (Assignment.num_nets asg) Fun.id |> Array.to_list
    |> List.filter (fun n -> Array.length (Assignment.segments asg n) > 0)
    |> fun l -> Array.of_list (List.filteri (fun i _ -> i < 12) l)
  in
  Alcotest.(check bool) "fixture releases nets" true (Array.length released > 0);
  let before = layers_of asg in
  let config = { Config.default with Config.workers = 1; max_outer_iters = 3 } in
  let rep = Driver.optimize_released ~config asg ~released in
  Alcotest.(check int) "stops after the first scored sweep" 1 rep.Driver.iterations;
  Alcotest.(check int) "discarded sweep is not counted" 0 rep.Driver.partitions_solved;
  Alcotest.(check bool) "entry layers restored" true (before = layers_of asg);
  Alcotest.(check bool) "usage consistent" true (Assignment.check_usage asg = Ok ())

(* The happy-path complement: committed sweeps do count. *)
let test_committed_sweeps_counted () =
  let asg = build_design ~seed:5 () in
  let released = Critical.select asg ~ratio:0.02 in
  let rep =
    Driver.optimize_released
      ~config:{ Config.default with Config.workers = 1 }
      asg ~released
  in
  Alcotest.(check bool) "committed work is reported" true (rep.Driver.partitions_solved > 0);
  Alcotest.(check bool) "iterations reported" true (rep.Driver.iterations >= 1)

(* ---- Incr scheduler unit behaviour ------------------------------------------ *)

let test_incr_converges_and_redirties () =
  let asg = build_design ~seed:8 () in
  let released = Critical.select asg ~ratio:0.02 in
  let engine = Cpla_timing.Incremental.create asg in
  let config = { Config.default with Config.warm_start = false; workers = 1 } in
  let st = Driver.Incr.create ~config ~engine asg ~released in
  Alcotest.(check int) "all leaves start dirty" (Driver.Incr.leaf_count st)
    (Driver.Incr.dirty_count st);
  let solved = Driver.Incr.sweep st in
  Alcotest.(check int) "cold sweep solves every leaf" (Driver.Incr.leaf_count st) solved;
  (* drive to a fixed point: each sweep only re-solves what the last one moved *)
  let budget = ref 12 in
  while Driver.Incr.dirty_count st > 0 && !budget > 0 do
    let s = Driver.Incr.sweep st in
    Alcotest.(check bool) "dirty sweeps shrink to the dirty set" true
      (s <= Driver.Incr.leaf_count st);
    decr budget
  done;
  Alcotest.(check bool) "fixed point reached" true (Driver.Incr.dirty_count st = 0);
  Alcotest.(check int) "sweep at a fixed point is a no-op" 0 (Driver.Incr.sweep st);
  (* an external change re-dirties that net's leaves and their neighbours *)
  Driver.Incr.mark_net_dirty st released.(0);
  Alcotest.(check bool) "marking a net dirties its leaves" true
    (Driver.Incr.dirty_count st > 0);
  Alcotest.(check bool) "re-sweep solves only the dirty region" true
    (Driver.Incr.sweep st < Driver.Incr.leaf_count st);
  Alcotest.(check bool) "unknown nets are ignored" true
    (Driver.Incr.mark_net_dirty st max_int = ())

(* ---- digest: the cache key's canonicalisation contract ----------------------- *)

let build_infos asg released =
  let infos = Hashtbl.create 16 in
  Array.iter (fun n -> Hashtbl.replace infos n (Critical.path_info asg n)) released;
  Hashtbl.find infos

let leaf_formulations asg released =
  let infos = build_infos asg released in
  let items =
    Array.to_list released
    |> List.concat_map (fun net ->
           Array.to_list
             (Array.mapi
                (fun seg s -> { Partition.net; seg; mid = Segment.midpoint s })
                (Assignment.segments asg net)))
  in
  let graph = Assignment.graph asg in
  let leaves =
    Partition.build
      ~width:(Cpla_grid.Graph.width graph)
      ~height:(Cpla_grid.Graph.height graph)
      ~k:4 ~max_segments:8 items
  in
  List.filter_map
    (fun leaf ->
      List.iter
        (fun it -> Assignment.unassign asg ~net:it.Partition.net ~seg:it.Partition.seg)
        leaf.Partition.items;
      let f = Formulation.build asg ~infos ~items:leaf.Partition.items in
      Array.iter
        (fun (v : Formulation.var) ->
          Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg
            ~layer:v.Formulation.cands.(0))
        f.Formulation.vars;
      if Formulation.var_count f > 0 then Some f else None)
    leaves

let digest_fixture () =
  let asg = build_design ~w:32 ~nets:600 ~seed:11 () in
  let released = Critical.select asg ~ratio:0.01 in
  leaf_formulations asg released

let rename_nets delta (f : Formulation.t) =
  {
    f with
    Formulation.vars =
      Array.map
        (fun (v : Formulation.var) -> { v with Formulation.net = v.Formulation.net + delta })
        f.Formulation.vars;
  }

let translate ~dx ~dy (f : Formulation.t) =
  let edge (e : Cpla_grid.Graph.edge2d) =
    { e with Cpla_grid.Graph.x = e.Cpla_grid.Graph.x + dx; y = e.Cpla_grid.Graph.y + dy }
  in
  let tile (x, y) = (x + dx, y + dy) in
  {
    Formulation.vars =
      Array.map
        (fun (v : Formulation.var) ->
          { v with Formulation.edges = Array.map edge v.Formulation.edges })
        f.Formulation.vars;
    pairs =
      Array.map
        (fun (p : Formulation.pair) -> { p with Formulation.tile = tile p.Formulation.tile })
        f.Formulation.pairs;
    cap_rows =
      Array.map
        (fun (c : Formulation.cap_row) ->
          { c with Formulation.edge = edge c.Formulation.edge })
        f.Formulation.cap_rows;
    via_rows =
      Array.map
        (fun (vr : Formulation.via_row) ->
          { vr with Formulation.tile = tile vr.Formulation.tile })
        f.Formulation.via_rows;
  }

let test_digest_stable_under_renaming () =
  let fs = digest_fixture () in
  Alcotest.(check bool) "fixture has formulations" true (fs <> []);
  List.iter
    (fun f ->
      Alcotest.(check string) "digest is deterministic" (Formulation.digest f)
        (Formulation.digest f);
      (* any order-preserving injective renaming of net ids is invisible:
         the digest symbolises nets by first appearance *)
      Alcotest.(check string) "net renumbering invisible" (Formulation.digest f)
        (Formulation.digest (rename_nets 1000 f));
      (* absolute grid coordinates are dropped: a translated copy of the
         same subproblem shares the key *)
      Alcotest.(check string) "grid translation invisible" (Formulation.digest f)
        (Formulation.digest (translate ~dx:3 ~dy:5 f)))
    fs;
  let distinct =
    List.sort_uniq compare (List.map Formulation.digest fs) |> List.length
  in
  Alcotest.(check bool) "different subproblems get different keys" true (distinct > 1)

let test_digest_row_order_canonical () =
  let fs = digest_fixture () in
  let rev_rows (f : Formulation.t) =
    {
      f with
      Formulation.cap_rows =
        (let c = Array.copy f.Formulation.cap_rows in
         let n = Array.length c in
         Array.init n (fun i -> c.(n - 1 - i)));
      via_rows =
        (let v = Array.copy f.Formulation.via_rows in
         let n = Array.length v in
         Array.init n (fun i -> v.(n - 1 - i)));
    }
  in
  List.iter
    (fun f ->
      Alcotest.(check string) "constraint-row order invisible" (Formulation.digest f)
        (Formulation.digest (rev_rows f)))
    fs

let test_digest_sensitive_to_coefficients () =
  let fs = digest_fixture () in
  let f = List.hd fs in
  let bump_ts (f : Formulation.t) =
    {
      f with
      Formulation.vars =
        Array.mapi
          (fun i (v : Formulation.var) ->
            if i = 0 then
              {
                v with
                Formulation.ts =
                  Array.mapi
                    (fun j t -> if j = 0 then t *. 1.001 else t)
                    v.Formulation.ts;
              }
            else v)
          f.Formulation.vars;
    }
  in
  Alcotest.(check bool) "timing coefficients are load-bearing" true
    (Formulation.digest f <> Formulation.digest (bump_ts f));
  match
    List.find_opt (fun f -> Array.length f.Formulation.cap_rows > 0) fs
  with
  | None -> Alcotest.fail "fixture produced no capacity-constrained leaf"
  | Some f ->
      let bump_limit (f : Formulation.t) =
        {
          f with
          Formulation.cap_rows =
            Array.mapi
              (fun i (c : Formulation.cap_row) ->
                if i = 0 then { c with Formulation.limit = c.Formulation.limit + 1 }
                else c)
              f.Formulation.cap_rows;
        }
      in
      Alcotest.(check bool) "capacity limits are load-bearing" true
        (Formulation.digest f <> Formulation.digest (bump_limit f))

let suite =
  [
    QCheck_alcotest.to_alcotest equivalence_property;
    QCheck_alcotest.to_alcotest cache_transparency_property;
    QCheck_alcotest.to_alcotest warm_start_validity_property;
    Alcotest.test_case "cache hits on identical rerun" `Quick test_cache_hits_on_repeat;
    Alcotest.test_case "nan score restores, uncounted" `Quick
      test_nan_score_restores_and_does_not_count;
    Alcotest.test_case "committed sweeps counted" `Quick test_committed_sweeps_counted;
    Alcotest.test_case "incr scheduler converges and re-dirties" `Quick
      test_incr_converges_and_redirties;
    Alcotest.test_case "digest stable under renaming/translation" `Quick
      test_digest_stable_under_renaming;
    Alcotest.test_case "digest row order canonical" `Quick test_digest_row_order_canonical;
    Alcotest.test_case "digest coefficient-sensitive" `Quick
      test_digest_sensitive_to_coefficients;
  ]
