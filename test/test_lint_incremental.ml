(* The incremental engine's contract: whatever the cache contains, however
   the edits arrived, findings are byte-identical to a cold from-scratch run
   — and a warm run only re-summarizes the changed files plus their
   importers. *)

module Engine = Cpla_lint.Engine
module Finding = Cpla_lint.Finding
module Summary = Cpla_lint.Summary

let src ?(linted = true) src_path contents = { Engine.src_path; contents; linted }

(* ---- a small project with every cross-module interaction ------------------- *)

(* Three units in one fixture library: [a] hosts a parallel kernel whose body
   (pure / racy / racy-but-allowed) is an edit dimension, [b] optionally
   references [a]'s second export (driving [unused-export] and the import
   edge a warm run must honour), and [c] can appear or disappear (a worklist
   shape change, which must invalidate the whole cache). *)
type state = {
  touch : int;  (* trailing-comment counter on a.ml: content change, same AST *)
  a_body : int;  (* 0 pure, 1 domain-race, 2 race under [@cpla.allow] *)
  b_uses_scale : bool;  (* flips the A.scale reference, and with it an import *)
  with_c : bool;  (* third unit present: shape change *)
}

let initial = { touch = 0; a_body = 0; b_uses_scale = true; with_c = false }

let a_ml st =
  let kernel =
    match st.a_body mod 3 with
    | 0 -> "let run xs = Cpla_util.Pool.parallel_map ~workers:2 (scale 2) xs\n"
    | 1 ->
        "let run xs =\n\
        \  let total = ref 0 in\n\
        \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> total := !total + x; x) xs\n"
    | _ ->
        "let run xs =\n\
        \  let total = ref 0 in\n\
        \  (Cpla_util.Pool.parallel_map ~workers:2 (fun x -> total := !total + x; x) xs)\n\
        \  [@cpla.allow \"domain-race\"]\n"
  in
  "let scale k x = k * x\n" ^ kernel
  ^ String.concat "" (List.init st.touch (fun i -> Printf.sprintf "(* t%d *)\n" i))

let a_mli = "val scale : int -> int -> int\nval run : int array -> int array\n"

let b_ml st =
  if st.b_uses_scale then "let go xs = ignore (A.scale 2 3); A.run xs\n"
  else "let go xs = A.run xs\n"

let b_mli = "val go : int array -> int array\n"

let c_ml = "let helper x = x + 1\nlet use = helper 3\n"

let c_mli = "val helper : int -> int\nval use : int\n"

let sources st =
  [
    src "lib/fx/a.ml" (a_ml st);
    src "lib/fx/a.mli" a_mli;
    src "lib/fx/b.ml" (b_ml st);
    src "lib/fx/b.mli" b_mli;
  ]
  @ (if st.with_c then [ src "lib/fx/c.ml" c_ml; src "lib/fx/c.mli" c_mli ] else [])

(* ---- random edit sequences -------------------------------------------------- *)

type op = Touch | Body of int | Flip_scale | Flip_c

let apply st = function
  | Touch -> { st with touch = st.touch + 1 }
  | Body n -> { st with a_body = n }
  | Flip_scale -> { st with b_uses_scale = not st.b_uses_scale }
  | Flip_c -> { st with with_c = not st.with_c }

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Touch);
        (3, map (fun n -> Body n) (int_range 0 2));
        (2, return Flip_scale);
        (1, return Flip_c);
      ])

let op_print = function
  | Touch -> "Touch"
  | Body n -> Printf.sprintf "Body %d" n
  | Flip_scale -> "Flip_scale"
  | Flip_c -> "Flip_c"

let op_arb = QCheck.make ~print:op_print op_gen

let show_findings fs =
  String.concat "\n"
    (List.map
       (fun (f : Finding.t) ->
         Printf.sprintf "%s:%d [%s] %s" f.Finding.file f.Finding.line f.Finding.rule
           f.Finding.message)
       fs)

let equal_findings a b = List.compare Finding.compare a b = 0

(* After every step of a random edit sequence, the incremental run over the
   inherited cache must equal a from-scratch run — under both sequential and
   parallel summarization. *)
let incremental_equals_scratch =
  QCheck.Test.make ~name:"incremental lint equals from-scratch after any edits"
    ~count:20
    (QCheck.list_of_size (QCheck.Gen.int_range 1 8) op_arb)
    (fun ops ->
      let cache = ref Summary.empty in
      let st = ref initial in
      let step i op =
        st := apply !st op;
        let srcs = sources !st in
        let workers = 1 + (i mod 2) in
        let cache', warm, _ = Engine.lint_incremental ~workers ~cache:!cache srcs in
        cache := cache';
        let cold = Engine.lint_sources srcs in
        if not (equal_findings warm cold) then
          QCheck.Test.fail_reportf
            "after %s (step %d):@.-- warm --@.%s@.-- cold --@.%s"
            (String.concat "; " (List.map op_print ops))
            i (show_findings warm) (show_findings cold)
      in
      List.iteri step ops;
      true)

(* ---- targeted incrementality ------------------------------------------------ *)

(* A 1-file edit re-summarizes exactly the edited unit and its importers —
   witnessed by the stats counter — with identical findings. *)
let test_dirty_counter () =
  let st = { initial with with_c = true } in
  let cache, cold, stats0 = Engine.lint_incremental ~cache:Summary.empty (sources st) in
  Alcotest.(check int) "cold summarizes everything" 3 stats0.Summary.summarized;
  let cache, warm, stats1 = Engine.lint_incremental ~cache (sources st) in
  Alcotest.(check bool) "warm-clean findings match" true (equal_findings warm cold);
  Alcotest.(check int) "warm-clean summarizes nothing" 0 stats1.Summary.summarized;
  Alcotest.(check int) "warm-clean reuses everything" 3 stats1.Summary.reused;
  let st' = { st with touch = st.touch + 1 } in
  let _, warm', stats2 = Engine.lint_incremental ~cache (sources st') in
  let cold' = Engine.lint_sources (sources st') in
  Alcotest.(check bool) "warm-1-dirty findings match" true (equal_findings warm' cold');
  (* a.ml changed; b imports A; c is untouched and unrelated *)
  Alcotest.(check int) "1-dirty summarizes the file and its importer" 2
    stats2.Summary.summarized;
  Alcotest.(check int) "1-dirty reuses the unrelated unit" 1 stats2.Summary.reused

(* An edit to the .mli alone (drop an export) dirties that unit. *)
let test_intf_edit_dirties () =
  let st = initial in
  let cache, _, _ = Engine.lint_incremental ~cache:Summary.empty (sources st) in
  let srcs' =
    List.map
      (fun (s : Engine.source) ->
        if String.equal s.src_path "lib/fx/a.mli" then
          { s with contents = "val scale : int -> int -> int\nval run : int array -> int array\n(* doc *)\n" }
        else s)
      (sources st)
  in
  let _, warm, stats = Engine.lint_incremental ~cache srcs' in
  let cold = Engine.lint_sources srcs' in
  Alcotest.(check bool) "findings match" true (equal_findings warm cold);
  Alcotest.(check bool) "the unit was re-summarized" true (stats.Summary.summarized >= 1)

(* ---- cache persistence ------------------------------------------------------- *)

let tmp_cache name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_cache_roundtrip () =
  let path = tmp_cache "cpla-lint-cache-roundtrip" in
  let st = initial in
  let cache, cold, _ = Engine.lint_incremental ~cache:Summary.empty (sources st) in
  Summary.save path cache;
  let cache' = Summary.load path in
  let _, warm, stats = Engine.lint_incremental ~cache:cache' (sources st) in
  Sys.remove path;
  Alcotest.(check bool) "findings survive the round trip" true (equal_findings warm cold);
  Alcotest.(check int) "nothing re-summarized" 0 stats.Summary.summarized

(* A cache written by a different engine version must be ignored — a full
   rebuild, never a crash or a misread. *)
let test_cache_stale_version () =
  let path = tmp_cache "cpla-lint-cache-stale" in
  let st = initial in
  let cache, cold, _ = Engine.lint_incremental ~cache:Summary.empty (sources st) in
  Summary.save path cache;
  (* rewrite the header to a future engine version, keeping the body *)
  let ic = open_in_bin path in
  let _header = input_line ic in
  let body = really_input_string ic (in_channel_length ic - pos_in ic) in
  close_in ic;
  let oc = open_out_bin path in
  Printf.fprintf oc "cpla-lint-cache/1 engine=%d rules=deadbeef\n"
    (Summary.engine_version + 1);
  output_string oc body;
  close_out oc;
  let stale = Summary.load path in
  let _, warm, stats = Engine.lint_incremental ~cache:stale (sources st) in
  Sys.remove path;
  Alcotest.(check bool) "findings still match" true (equal_findings warm cold);
  Alcotest.(check int) "stale version forces a full rebuild" 2 stats.Summary.summarized

let test_cache_corrupt () =
  let path = tmp_cache "cpla-lint-cache-corrupt" in
  let oc = open_out_bin path in
  output_string oc "not a cache at all\x00\x01\x02";
  close_out oc;
  let c = Summary.load path in
  Sys.remove path;
  let _, warm, stats = Engine.lint_incremental ~cache:c (sources initial) in
  Alcotest.(check bool) "corrupt cache degrades to cold" true
    (stats.Summary.summarized = stats.Summary.files);
  Alcotest.(check bool) "and still lints" true
    (equal_findings warm (Engine.lint_sources (sources initial)))

let suite =
  [
    QCheck_alcotest.to_alcotest incremental_equals_scratch;
    Alcotest.test_case "dirty counter: 1 edit = file + importer" `Quick
      test_dirty_counter;
    Alcotest.test_case "mli edit dirties its unit" `Quick test_intf_edit_dirties;
    Alcotest.test_case "cache round trip" `Quick test_cache_roundtrip;
    Alcotest.test_case "stale cache version rebuilds" `Quick test_cache_stale_version;
    Alcotest.test_case "corrupt cache degrades to cold" `Quick test_cache_corrupt;
  ]
