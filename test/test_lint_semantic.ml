(* Fixture tests for the whole-program rules: each gets a small in-memory
   multi-file project proving it fires (cross-module where that is the
   point), that [@cpla.allow] silences it at the documented sites, and that
   the diagnostic carries the evidence chain a reader needs. *)

module Engine = Cpla_lint.Engine
module Finding = Cpla_lint.Finding
module Report = Cpla_lint.Report

let src ?(linted = true) src_path contents = { Engine.src_path; contents; linted }

(* Findings for one rule over an in-memory project, as (path, line, message). *)
let hits rule sources =
  Engine.lint_sources sources
  |> List.filter (fun (f : Finding.t) -> String.equal f.Finding.rule rule)
  |> List.map (fun (f : Finding.t) -> (f.Finding.file, f.Finding.line, f.Finding.message))

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let check_msg name msg subs =
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "%s: message mentions %S" name sub) true
        (contains msg sub))
    subs

(* ---- domain-race ----------------------------------------------------------- *)

let test_domain_race_local () =
  match
    hits "domain-race"
      [
        src "lib/fixture/acc.ml"
          "let run xs =\n\
          \  let total = ref 0 in\n\
          \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> total := !total + x; x) xs\n";
        src "lib/fixture/acc.mli" "val run : int array -> int array\n";
      ]
  with
  | [ (file, line, msg) ] ->
      Alcotest.(check string) "file" "lib/fixture/acc.ml" file;
      Alcotest.(check int) "line" 3 line;
      check_msg "local race" msg
        [ "mutable state shared across domains"; "`total` (ref)"; "Pool.parallel_map" ]
  | fs -> Alcotest.failf "expected exactly one race, got %d" (List.length fs)

let test_domain_race_array_needs_write () =
  (* reading a captured array in the kernel is the sanctioned pattern
     (workers read shared inputs); only a write makes it a race *)
  let project write =
    [
      src "lib/fixture/acc.ml"
        (Printf.sprintf
           "let run xs =\n\
           \  let buf = Array.make 4 0 in\n\
           \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> %s) xs\n"
           (if write then "buf.(0) <- x; x + buf.(1)" else "x + buf.(1)"));
      src "lib/fixture/acc.mli" "val run : int array -> int array\n";
    ]
  in
  Alcotest.(check int) "read-only capture is clean" 0 (List.length (hits "domain-race" (project false)));
  Alcotest.(check int) "written capture fires" 1 (List.length (hits "domain-race" (project true)))

let test_domain_race_cross_module () =
  (* the regression the issue calls out: the ref lives in one module, the
     kernel that captures it in another — the chain must name both files *)
  match
    hits "domain-race"
      [
        src "lib/fixture/store.ml" "let hits = ref 0\nlet bump n = hits := !hits + n\n";
        src "lib/fixture/store.mli" "val hits : int ref\nval bump : int -> unit\n";
        src "lib/fixture/worker.ml"
          "let run xs =\n\
          \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> Store.hits := x; x) xs\n";
        src "lib/fixture/worker.mli" "val run : int array -> int array\n";
      ]
  with
  | [ (file, _, msg) ] ->
      Alcotest.(check string) "reported in the capturing module" "lib/fixture/worker.ml" file;
      check_msg "cross-module race" msg
        [
          "top-level `Store.hits` (ref) defined at lib/fixture/store.ml:1";
          "Pool.parallel_map";
        ]
  | fs -> Alcotest.failf "expected exactly one race, got %d" (List.length fs)

let test_domain_race_chain_through_helper () =
  (* the closure is let-bound first and only then handed to the pool: the
     diagnostic must walk the whole path, not just the immediate argument *)
  match
    hits "domain-race"
      [
        src "lib/fixture/acc.ml"
          "let run xs =\n\
          \  let seen = Hashtbl.create 8 in\n\
          \  let kernel x = Hashtbl.replace seen x (); x in\n\
          \  Cpla_util.Pool.parallel_map ~workers:2 kernel xs\n";
        src "lib/fixture/acc.mli" "val run : int array -> int array\n";
      ]
  with
  | [ (_, _, msg) ] ->
      check_msg "chain" msg [ "`seen` (Hashtbl)"; "`kernel`"; "Pool.parallel_map" ]
  | fs -> Alcotest.failf "expected exactly one race, got %d" (List.length fs)

let test_domain_race_allow () =
  (* suppressible at the capture site... *)
  let capture_site =
    [
      src "lib/fixture/acc.ml"
        "let run xs =\n\
        \  let total = ref 0 in\n\
        \  (Cpla_util.Pool.parallel_map ~workers:2 (fun x -> total := x; x) xs)\n\
        \  [@cpla.allow \"domain-race\"]\n";
      src "lib/fixture/acc.mli" "val run : int array -> int array\n";
    ]
  in
  (* ...and at the creation site, for values whose sharing discipline is
     documented where they are defined *)
  let creation_site =
    [
      src "lib/fixture/store.ml" "let[@cpla.allow \"domain-race\"] hits = ref 0\n";
      src "lib/fixture/store.mli" "val hits : int ref\n";
      src "lib/fixture/worker.ml"
        "let run xs =\n\
        \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> Store.hits := x; x) xs\n";
      src "lib/fixture/worker.mli" "val run : int array -> int array\n";
    ]
  in
  Alcotest.(check int) "capture-site allow" 0 (List.length (hits "domain-race" capture_site));
  Alcotest.(check int) "creation-site allow" 0 (List.length (hits "domain-race" creation_site))

let test_domain_race_test_area_exempt () =
  Alcotest.(check int) "test/ may share freely" 0
    (List.length
       (hits "domain-race"
          [
            src "test/test_fixture.ml"
              "let run xs =\n\
              \  let total = ref 0 in\n\
              \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> total := x; x) xs\n";
          ]))

(* ---- impure-kernel --------------------------------------------------------- *)

let test_impure_kernel_direct () =
  match
    hits "impure-kernel"
      [
        src "lib/fixture/jitter.ml"
          "let run xs = Cpla_util.Pool.parallel_map ~workers:2 (fun x -> x + Random.int 3) xs\n";
        src "lib/fixture/jitter.mli" "val run : int array -> int array\n";
      ]
  with
  | [ (file, _, msg) ] ->
      Alcotest.(check string) "file" "lib/fixture/jitter.ml" file;
      check_msg "direct impurity" msg [ "is impure"; "Random" ]
  | fs -> Alcotest.failf "expected exactly one impure kernel, got %d" (List.length fs)

let test_impure_kernel_via_callee () =
  (* the impurity is two modules away; the witness chain must say how the
     kernel reaches it *)
  match
    hits "impure-kernel"
      [
        src "lib/fixture/noise.ml" "let sample () = Random.int 100\n";
        src "lib/fixture/noise.mli" "val sample : unit -> int\n";
        src "lib/fixture/jitter.ml"
          "let run xs =\n\
          \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> x + Noise.sample ()) xs\n";
        src "lib/fixture/jitter.mli" "val run : int array -> int array\n";
      ]
  with
  | [ (file, _, msg) ] ->
      Alcotest.(check string) "file" "lib/fixture/jitter.ml" file;
      check_msg "witness chain" msg [ "is impure"; "Noise.sample" ]
  | fs -> Alcotest.failf "expected exactly one impure kernel, got %d" (List.length fs)

let test_impure_kernel_pure_and_allow () =
  Alcotest.(check int) "pure kernel is clean" 0
    (List.length
       (hits "impure-kernel"
          [
            src "lib/fixture/jitter.ml"
              "let run xs = Cpla_util.Pool.parallel_map ~workers:2 (fun x -> x * x) xs\n";
            src "lib/fixture/jitter.mli" "val run : int array -> int array\n";
          ]));
  Alcotest.(check int) "allow at the call" 0
    (List.length
       (hits "impure-kernel"
          [
            src "lib/fixture/jitter.ml"
              "let run xs =\n\
              \  (Cpla_util.Pool.parallel_map ~workers:2 (fun x -> x + Random.int 3) xs)\n\
              \  [@cpla.allow \"impure-kernel\"]\n";
            src "lib/fixture/jitter.mli" "val run : int array -> int array\n";
          ]))

(* ---- unused-export --------------------------------------------------------- *)

let test_unused_export () =
  let project ~referenced ~allowed =
    [
      src "lib/fixture/store.ml" "let hits () = 0\nlet misses () = 1\n";
      src "lib/fixture/store.mli"
        (Printf.sprintf "val hits : unit -> int\nval misses : unit -> int%s\n"
           (if allowed then "\n  [@@cpla.allow \"unused-export\"]" else ""));
      src "lib/fixture/worker.ml"
        (if referenced then "let total () = Store.hits () + Store.misses ()\n"
         else "let total () = Store.hits ()\n");
      src "lib/fixture/worker.mli" "val total : unit -> int\n";
    ]
  in
  (* worker.mli's own export is deliberately unused too; the assertions are
     about the store interface *)
  let store_hits project =
    List.filter (fun (file, _, _) -> file = "lib/fixture/store.mli") (hits "unused-export" project)
  in
  (match store_hits (project ~referenced:false ~allowed:false) with
  | [ (file, line, msg) ] ->
      Alcotest.(check string) "reported against the interface" "lib/fixture/store.mli" file;
      Alcotest.(check int) "on the val" 2 line;
      check_msg "names the symbol" msg [ "`misses`" ]
  | fs -> Alcotest.failf "expected exactly one unused export, got %d" (List.length fs));
  Alcotest.(check int) "cross-module reference clears it" 0
    (List.length (store_hits (project ~referenced:true ~allowed:false)));
  Alcotest.(check int) "[@@cpla.allow] marks an extension point" 0
    (List.length (store_hits (project ~referenced:false ~allowed:true)))

(* ---- check-not-threaded ---------------------------------------------------- *)

let test_check_not_threaded () =
  let project threaded =
    [
      src "lib/fixture/solver.ml"
        "let solve ?check n =\n  (match check with Some f -> f () | None -> ());\n  n * 2\n";
      src "lib/fixture/solver.mli" "val solve : ?check:(unit -> unit) -> int -> int\n";
      src "lib/fixture/driver.ml"
        (Printf.sprintf "let run ?check n =\n  ignore check;\n  Solver.solve %sn\n"
           (if threaded then "?check " else ""));
      src "lib/fixture/driver.mli" "val run : ?check:(unit -> unit) -> int -> int\n";
    ]
  in
  (match hits "check-not-threaded" (project false) with
  | [ (file, line, msg) ] ->
      Alcotest.(check string) "at the dropping call" "lib/fixture/driver.ml" file;
      Alcotest.(check int) "line" 3 line;
      check_msg "names both ends" msg [ "Solver.solve"; "?check"; "Driver.run" ]
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  Alcotest.(check int) "threading the hook clears it" 0
    (List.length (hits "check-not-threaded" (project true)))

(* ---- alloc-in-kernel ------------------------------------------------------- *)

let test_alloc_direct () =
  match
    hits "alloc-in-kernel"
      [
        src "lib/fixture/k.ml" "let pair x = (x, x)\n[@@cpla.zero_alloc]\n";
        src "lib/fixture/k.mli" "val pair : int -> int * int\n";
      ]
  with
  | [ (file, _, msg) ] ->
      Alcotest.(check string) "reported at the annotated binding" "lib/fixture/k.ml" file;
      check_msg "direct allocation" msg
        [ "`K.pair`"; "[@cpla.zero_alloc]"; "allocates a tuple" ]
  | fs -> Alcotest.failf "expected exactly one alloc finding, got %d" (List.length fs)

let test_alloc_cross_module_chain () =
  (* the allocation lives two calls away in another module: the diagnostic
     must carry the whole creation-to-allocation chain *)
  match
    hits "alloc-in-kernel"
      [
        src "lib/fixture/helper.ml" "let box x = [ x ]\nlet via x = box x\n";
        src "lib/fixture/helper.mli" "val box : int -> int list\nval via : int -> int list\n";
        src "lib/fixture/hot.ml" "let kernel x = Helper.via x\n[@@cpla.zero_alloc]\n";
        src "lib/fixture/hot.mli" "val kernel : int -> int list\n";
      ]
  with
  | [ (file, _, msg) ] ->
      Alcotest.(check string) "reported at the root" "lib/fixture/hot.ml" file;
      check_msg "witness chain" msg
        [
          "`Hot.kernel`";
          "calls `Helper.via` at lib/fixture/hot.ml:1";
          "calls `Helper.box` at lib/fixture/helper.ml:2";
          "allocates a list cell at lib/fixture/helper.ml:1";
        ]
  | fs -> Alcotest.failf "expected exactly one alloc finding, got %d" (List.length fs)

let test_alloc_allow_sites () =
  (* sanctioned at the allocation site itself... *)
  let at_site =
    [
      src "lib/fixture/k.ml"
        "let pair x = ((x, x) [@cpla.allow \"alloc-in-kernel\"])\n[@@cpla.zero_alloc]\n";
      src "lib/fixture/k.mli" "val pair : int -> int * int\n";
    ]
  in
  (* ...and on a call edge, pruning everything behind the callee *)
  let at_edge =
    [
      src "lib/fixture/helper.ml" "let box x = [ x ]\n";
      src "lib/fixture/helper.mli" "val box : int -> int list\n";
      src "lib/fixture/hot.ml"
        "let kernel x = (Helper.box x [@cpla.allow \"alloc-in-kernel\"])\n\
         [@@cpla.zero_alloc]\n";
      src "lib/fixture/hot.mli" "val kernel : int -> int list\n";
    ]
  in
  Alcotest.(check int) "site allow" 0 (List.length (hits "alloc-in-kernel" at_site));
  Alcotest.(check int) "edge allow" 0 (List.length (hits "alloc-in-kernel" at_edge))

let test_alloc_accumulator_ref () =
  (* a local ref consumed only through !/:=/incr stays in registers: the
     canonical [let acc = ref 0.0 in ... !acc] kernel shape must verify *)
  let accumulator =
    [
      src "lib/fixture/k.ml"
        "let sum xs =\n\
        \  let acc = ref 0 in\n\
        \  for i = 0 to Array.length xs - 1 do\n\
        \    acc := !acc + xs.(i)\n\
        \  done;\n\
        \  !acc\n\
         [@@cpla.zero_alloc]\n";
      src "lib/fixture/k.mli" "val sum : int array -> int\n";
    ]
  in
  (* but a ref that escapes as a value really is a heap cell *)
  let escaping =
    [
      src "lib/fixture/k.ml"
        "let cell x =\n  let r = ref x in\n  ignore (Fun.id r);\n  !r\n[@@cpla.zero_alloc]\n";
      src "lib/fixture/k.mli" "val cell : int -> int\n";
    ]
  in
  Alcotest.(check int) "accumulator is clean" 0 (List.length (hits "alloc-in-kernel" accumulator));
  match hits "alloc-in-kernel" escaping with
  | [ (_, _, msg) ] -> check_msg "escape" msg [ "allocates a ref cell"; "`r` escapes" ]
  | fs -> Alcotest.failf "expected exactly one escape finding, got %d" (List.length fs)

let test_alloc_partial_application () =
  match
    hits "alloc-in-kernel"
      [
        src "lib/fixture/k.ml"
          "let add a b = a + b\nlet curry1 x = add x\n[@@cpla.zero_alloc]\n";
        src "lib/fixture/k.mli" "val add : int -> int -> int\nval curry1 : int -> int -> int\n";
      ]
  with
  | [ (_, _, msg) ] ->
      check_msg "partial application" msg [ "partially applies `K.add`"; "allocates a closure" ]
  | fs -> Alcotest.failf "expected exactly one partial-app finding, got %d" (List.length fs)

(* ---- blocking-in-loop ------------------------------------------------------- *)

let test_blocking_direct () =
  match
    hits "blocking-in-loop"
      [
        src "lib/fixture/loop.ml" "let run () = Unix.sleep 1\n[@@cpla.event_loop]\n";
        src "lib/fixture/loop.mli" "val run : unit -> unit\n";
      ]
  with
  | [ (file, line, msg) ] ->
      (* reported at the blocking site, not at the annotation *)
      Alcotest.(check string) "file" "lib/fixture/loop.ml" file;
      Alcotest.(check int) "line" 1 line;
      check_msg "direct blocking" msg
        [ "`Unix.sleep` may block the event loop"; "directly inside [@cpla.event_loop] `Loop.run`" ]
  | fs -> Alcotest.failf "expected exactly one blocking finding, got %d" (List.length fs)

let test_blocking_cross_module_chain () =
  match
    hits "blocking-in-loop"
      [
        src "lib/fixture/store.ml"
          "let m = Mutex.create ()\nlet locked f = Mutex.lock m; f (); Mutex.unlock m\n";
        src "lib/fixture/store.mli" "val m : Mutex.t\nval locked : (unit -> unit) -> unit\n";
        src "lib/fixture/loop.ml"
          "let tick () = Store.locked (fun () -> ())\n\
           let run () = tick ()\n\
           [@@cpla.event_loop]\n";
        src "lib/fixture/loop.mli" "val tick : unit -> unit\nval run : unit -> unit\n";
      ]
  with
  | [ (file, line, msg) ] ->
      Alcotest.(check string) "reported where the primitive is" "lib/fixture/store.ml" file;
      Alcotest.(check int) "line" 2 line;
      check_msg "reachability chain" msg
        [
          "`Mutex.lock` may block the event loop";
          "reachable from [@cpla.event_loop] `Loop.run`";
          "calls `Loop.tick` at lib/fixture/loop.ml:2";
          "calls `Store.locked` at lib/fixture/loop.ml:1";
        ]
  | fs -> Alcotest.failf "expected exactly one blocking finding, got %d" (List.length fs)

let test_blocking_allow_and_while_true () =
  let allowed =
    [
      src "lib/fixture/loop.ml"
        "let run () = (Unix.sleep 1 [@cpla.allow \"blocking-in-loop\"])\n[@@cpla.event_loop]\n";
      src "lib/fixture/loop.mli" "val run : unit -> unit\n";
    ]
  in
  let spin select =
    [
      src "lib/fixture/loop.ml"
        (Printf.sprintf
           "let run () =\n  while true do\n    %s\n  done\n[@@cpla.event_loop]\n"
           (if select then "ignore (Unix.select [] [] [] 0.1)" else "ignore (Sys.opaque_identity 0)"));
      src "lib/fixture/loop.mli" "val run : unit -> unit\n";
    ]
  in
  Alcotest.(check int) "site allow" 0 (List.length (hits "blocking-in-loop" allowed));
  Alcotest.(check int) "select loop is the sanctioned shape" 0
    (List.length (hits "blocking-in-loop" (spin true)));
  match hits "blocking-in-loop" (spin false) with
  | [ (_, _, msg) ] -> check_msg "busy loop" msg [ "while true"; "without select/poll" ]
  | fs -> Alcotest.failf "expected exactly one busy-loop finding, got %d" (List.length fs)

(* ---- stale-allow ------------------------------------------------------------ *)

let test_stale_allow () =
  (* one live allow (it suppresses an obj-magic) and one stale (nothing to
     suppress): only the stale one is reported, at its own annotation *)
  match
    hits "stale-allow"
      [
        src "lib/fixture/mix.ml"
          "let live x = (Obj.magic x [@cpla.allow \"obj-magic\"])\n\
           let stale x = (x [@cpla.allow \"obj-magic\"])\n";
        src "lib/fixture/mix.mli" "val live : 'a -> 'b\nval stale : int -> int\n";
      ]
  with
  | [ (file, line, msg) ] ->
      Alcotest.(check string) "file" "lib/fixture/mix.ml" file;
      Alcotest.(check int) "line" 2 line;
      check_msg "stale" msg [ "obj-magic"; "no longer suppresses" ]
  | fs -> Alcotest.failf "expected exactly one stale-allow finding, got %d" (List.length fs)

let test_stale_allow_file_level_and_context () =
  (* a file-wide allow with nothing to suppress is stale too *)
  let file_wide =
    [
      src "lib/fixture/mix.ml" "[@@@cpla.allow \"obj-magic\"]\n\nlet f x = x + 1\n";
      src "lib/fixture/mix.mli" "val f : int -> int\n";
    ]
  in
  (* allows in non-linted context units are not audited *)
  let context_only =
    [
      src ~linted:false "lib/fixture/mix.ml" "let stale x = (x [@cpla.allow \"obj-magic\"])\n";
      src "lib/fixture/other.ml" "let g x = x\n";
      src "lib/fixture/other.mli" "val g : int -> int\n";
    ]
  in
  (match hits "stale-allow" file_wide with
  | [ (_, line, _) ] -> Alcotest.(check int) "at the floating attribute" 1 line
  | fs -> Alcotest.failf "expected exactly one stale-allow finding, got %d" (List.length fs));
  Alcotest.(check int) "context allows unaudited" 0
    (List.length (hits "stale-allow" context_only))

(* ---- deterministic output --------------------------------------------------- *)

let test_report_normalize () =
  let f file line rule =
    {
      Finding.file;
      line;
      col = 0;
      rule;
      message = Printf.sprintf "%s in %s" rule file;
    }
  in
  let shuffled =
    [
      f "lib/b.ml" 3 "obj-magic";
      f "lib/a.ml" 9 "missing-mli";
      f "lib/b.ml" 3 "obj-magic" (* exact duplicate: dropped *);
      f "lib/b.ml" 1 "obj-magic";
      f "lib/a.ml" 9 "missing-mli" (* exact duplicate: dropped *);
    ]
  in
  let got = Report.normalize shuffled in
  Alcotest.(check (list string))
    "sorted by (file, line, col, rule) with duplicates removed"
    [ "lib/a.ml:9"; "lib/b.ml:1"; "lib/b.ml:3" ]
    (List.map (fun (x : Finding.t) -> Printf.sprintf "%s:%d" x.Finding.file x.Finding.line) got);
  (* co-located findings from different rules must both survive *)
  let colocated = [ f "lib/a.ml" 1 "rule-b"; f "lib/a.ml" 1 "rule-a" ] in
  Alcotest.(check (list string))
    "distinct rules at one site are kept, rule-sorted" [ "rule-a"; "rule-b" ]
    (List.map (fun (x : Finding.t) -> x.Finding.rule) (Report.normalize colocated))

(* ---- reporters ------------------------------------------------------------- *)

let sample_findings () =
  Engine.lint_string ~filename:"lib/fixture/snippet.ml" "let f x = Obj.magic x\n"

let test_github_format () =
  let s = Format.asprintf "%a" (fun fmt -> Report.github fmt) (sample_findings ()) in
  Alcotest.(check bool) "workflow command" true
    (contains s "::error file=lib/fixture/snippet.ml,line=1,col=11,title=cpla-lint obj-magic::");
  (* messages with newlines/percents must be escaped, not break the command *)
  let esc =
    Format.asprintf "%a" (fun fmt -> Report.github fmt)
      [
        Cpla_lint.Finding.file_level ~file:"lib/a.ml" ~rule:"parse-error"
          ~msg:"bad\nline with 100%";
      ]
  in
  Alcotest.(check bool) "newline escaped" true (contains esc "bad%0Aline");
  Alcotest.(check bool) "percent escaped" true (contains esc "100%25")

let test_sarif_format () =
  let s = Format.asprintf "%a" (fun fmt -> Report.sarif fmt) (sample_findings ()) in
  List.iter
    (fun sub -> Alcotest.(check bool) sub true (contains s sub))
    [
      "\"version\":\"2.1.0\"";
      "\"name\":\"cpla-lint\"";
      "\"id\":\"obj-magic\"";
      "\"uri\":\"lib/fixture/snippet.ml\"";
      "\"startLine\":1";
    ]

let suite =
  [
    Alcotest.test_case "domain-race: same-module capture" `Quick test_domain_race_local;
    Alcotest.test_case "domain-race: array needs a write" `Quick
      test_domain_race_array_needs_write;
    Alcotest.test_case "domain-race: cross-module chain" `Quick test_domain_race_cross_module;
    Alcotest.test_case "domain-race: via let-bound kernel" `Quick
      test_domain_race_chain_through_helper;
    Alcotest.test_case "domain-race: allow sites" `Quick test_domain_race_allow;
    Alcotest.test_case "domain-race: test area exempt" `Quick
      test_domain_race_test_area_exempt;
    Alcotest.test_case "impure-kernel: direct" `Quick test_impure_kernel_direct;
    Alcotest.test_case "impure-kernel: via callee" `Quick test_impure_kernel_via_callee;
    Alcotest.test_case "impure-kernel: pure/allow" `Quick test_impure_kernel_pure_and_allow;
    Alcotest.test_case "unused-export" `Quick test_unused_export;
    Alcotest.test_case "check-not-threaded" `Quick test_check_not_threaded;
    Alcotest.test_case "alloc-in-kernel: direct" `Quick test_alloc_direct;
    Alcotest.test_case "alloc-in-kernel: cross-module chain" `Quick
      test_alloc_cross_module_chain;
    Alcotest.test_case "alloc-in-kernel: allow sites" `Quick test_alloc_allow_sites;
    Alcotest.test_case "alloc-in-kernel: accumulator ref" `Quick test_alloc_accumulator_ref;
    Alcotest.test_case "alloc-in-kernel: partial application" `Quick
      test_alloc_partial_application;
    Alcotest.test_case "blocking-in-loop: direct" `Quick test_blocking_direct;
    Alcotest.test_case "blocking-in-loop: cross-module chain" `Quick
      test_blocking_cross_module_chain;
    Alcotest.test_case "blocking-in-loop: allow and while-true" `Quick
      test_blocking_allow_and_while_true;
    Alcotest.test_case "stale-allow: live vs stale" `Quick test_stale_allow;
    Alcotest.test_case "stale-allow: file-level and context" `Quick
      test_stale_allow_file_level_and_context;
    Alcotest.test_case "report: normalize" `Quick test_report_normalize;
    Alcotest.test_case "github reporter" `Quick test_github_format;
    Alcotest.test_case "sarif reporter" `Quick test_sarif_format;
  ]
