(* Fixture tests for the whole-program rules: each gets a small in-memory
   multi-file project proving it fires (cross-module where that is the
   point), that [@cpla.allow] silences it at the documented sites, and that
   the diagnostic carries the evidence chain a reader needs. *)

module Engine = Cpla_lint.Engine
module Finding = Cpla_lint.Finding
module Report = Cpla_lint.Report

let src ?(linted = true) src_path contents = { Engine.src_path; contents; linted }

(* Findings for one rule over an in-memory project, as (path, line, message). *)
let hits rule sources =
  Engine.lint_sources sources
  |> List.filter (fun (f : Finding.t) -> String.equal f.Finding.rule rule)
  |> List.map (fun (f : Finding.t) -> (f.Finding.file, f.Finding.line, f.Finding.message))

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let check_msg name msg subs =
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "%s: message mentions %S" name sub) true
        (contains msg sub))
    subs

(* ---- domain-race ----------------------------------------------------------- *)

let test_domain_race_local () =
  match
    hits "domain-race"
      [
        src "lib/fixture/acc.ml"
          "let run xs =\n\
          \  let total = ref 0 in\n\
          \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> total := !total + x; x) xs\n";
        src "lib/fixture/acc.mli" "val run : int array -> int array\n";
      ]
  with
  | [ (file, line, msg) ] ->
      Alcotest.(check string) "file" "lib/fixture/acc.ml" file;
      Alcotest.(check int) "line" 3 line;
      check_msg "local race" msg
        [ "mutable state shared across domains"; "`total` (ref)"; "Pool.parallel_map" ]
  | fs -> Alcotest.failf "expected exactly one race, got %d" (List.length fs)

let test_domain_race_array_needs_write () =
  (* reading a captured array in the kernel is the sanctioned pattern
     (workers read shared inputs); only a write makes it a race *)
  let project write =
    [
      src "lib/fixture/acc.ml"
        (Printf.sprintf
           "let run xs =\n\
           \  let buf = Array.make 4 0 in\n\
           \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> %s) xs\n"
           (if write then "buf.(0) <- x; x + buf.(1)" else "x + buf.(1)"));
      src "lib/fixture/acc.mli" "val run : int array -> int array\n";
    ]
  in
  Alcotest.(check int) "read-only capture is clean" 0 (List.length (hits "domain-race" (project false)));
  Alcotest.(check int) "written capture fires" 1 (List.length (hits "domain-race" (project true)))

let test_domain_race_cross_module () =
  (* the regression the issue calls out: the ref lives in one module, the
     kernel that captures it in another — the chain must name both files *)
  match
    hits "domain-race"
      [
        src "lib/fixture/store.ml" "let hits = ref 0\nlet bump n = hits := !hits + n\n";
        src "lib/fixture/store.mli" "val hits : int ref\nval bump : int -> unit\n";
        src "lib/fixture/worker.ml"
          "let run xs =\n\
          \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> Store.hits := x; x) xs\n";
        src "lib/fixture/worker.mli" "val run : int array -> int array\n";
      ]
  with
  | [ (file, _, msg) ] ->
      Alcotest.(check string) "reported in the capturing module" "lib/fixture/worker.ml" file;
      check_msg "cross-module race" msg
        [
          "top-level `Store.hits` (ref) defined at lib/fixture/store.ml:1";
          "Pool.parallel_map";
        ]
  | fs -> Alcotest.failf "expected exactly one race, got %d" (List.length fs)

let test_domain_race_chain_through_helper () =
  (* the closure is let-bound first and only then handed to the pool: the
     diagnostic must walk the whole path, not just the immediate argument *)
  match
    hits "domain-race"
      [
        src "lib/fixture/acc.ml"
          "let run xs =\n\
          \  let seen = Hashtbl.create 8 in\n\
          \  let kernel x = Hashtbl.replace seen x (); x in\n\
          \  Cpla_util.Pool.parallel_map ~workers:2 kernel xs\n";
        src "lib/fixture/acc.mli" "val run : int array -> int array\n";
      ]
  with
  | [ (_, _, msg) ] ->
      check_msg "chain" msg [ "`seen` (Hashtbl)"; "`kernel`"; "Pool.parallel_map" ]
  | fs -> Alcotest.failf "expected exactly one race, got %d" (List.length fs)

let test_domain_race_allow () =
  (* suppressible at the capture site... *)
  let capture_site =
    [
      src "lib/fixture/acc.ml"
        "let run xs =\n\
        \  let total = ref 0 in\n\
        \  (Cpla_util.Pool.parallel_map ~workers:2 (fun x -> total := x; x) xs)\n\
        \  [@cpla.allow \"domain-race\"]\n";
      src "lib/fixture/acc.mli" "val run : int array -> int array\n";
    ]
  in
  (* ...and at the creation site, for values whose sharing discipline is
     documented where they are defined *)
  let creation_site =
    [
      src "lib/fixture/store.ml" "let[@cpla.allow \"domain-race\"] hits = ref 0\n";
      src "lib/fixture/store.mli" "val hits : int ref\n";
      src "lib/fixture/worker.ml"
        "let run xs =\n\
        \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> Store.hits := x; x) xs\n";
      src "lib/fixture/worker.mli" "val run : int array -> int array\n";
    ]
  in
  Alcotest.(check int) "capture-site allow" 0 (List.length (hits "domain-race" capture_site));
  Alcotest.(check int) "creation-site allow" 0 (List.length (hits "domain-race" creation_site))

let test_domain_race_test_area_exempt () =
  Alcotest.(check int) "test/ may share freely" 0
    (List.length
       (hits "domain-race"
          [
            src "test/test_fixture.ml"
              "let run xs =\n\
              \  let total = ref 0 in\n\
              \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> total := x; x) xs\n";
          ]))

(* ---- impure-kernel --------------------------------------------------------- *)

let test_impure_kernel_direct () =
  match
    hits "impure-kernel"
      [
        src "lib/fixture/jitter.ml"
          "let run xs = Cpla_util.Pool.parallel_map ~workers:2 (fun x -> x + Random.int 3) xs\n";
        src "lib/fixture/jitter.mli" "val run : int array -> int array\n";
      ]
  with
  | [ (file, _, msg) ] ->
      Alcotest.(check string) "file" "lib/fixture/jitter.ml" file;
      check_msg "direct impurity" msg [ "is impure"; "Random" ]
  | fs -> Alcotest.failf "expected exactly one impure kernel, got %d" (List.length fs)

let test_impure_kernel_via_callee () =
  (* the impurity is two modules away; the witness chain must say how the
     kernel reaches it *)
  match
    hits "impure-kernel"
      [
        src "lib/fixture/noise.ml" "let sample () = Random.int 100\n";
        src "lib/fixture/noise.mli" "val sample : unit -> int\n";
        src "lib/fixture/jitter.ml"
          "let run xs =\n\
          \  Cpla_util.Pool.parallel_map ~workers:2 (fun x -> x + Noise.sample ()) xs\n";
        src "lib/fixture/jitter.mli" "val run : int array -> int array\n";
      ]
  with
  | [ (file, _, msg) ] ->
      Alcotest.(check string) "file" "lib/fixture/jitter.ml" file;
      check_msg "witness chain" msg [ "is impure"; "Noise.sample" ]
  | fs -> Alcotest.failf "expected exactly one impure kernel, got %d" (List.length fs)

let test_impure_kernel_pure_and_allow () =
  Alcotest.(check int) "pure kernel is clean" 0
    (List.length
       (hits "impure-kernel"
          [
            src "lib/fixture/jitter.ml"
              "let run xs = Cpla_util.Pool.parallel_map ~workers:2 (fun x -> x * x) xs\n";
            src "lib/fixture/jitter.mli" "val run : int array -> int array\n";
          ]));
  Alcotest.(check int) "allow at the call" 0
    (List.length
       (hits "impure-kernel"
          [
            src "lib/fixture/jitter.ml"
              "let run xs =\n\
              \  (Cpla_util.Pool.parallel_map ~workers:2 (fun x -> x + Random.int 3) xs)\n\
              \  [@cpla.allow \"impure-kernel\"]\n";
            src "lib/fixture/jitter.mli" "val run : int array -> int array\n";
          ]))

(* ---- unused-export --------------------------------------------------------- *)

let test_unused_export () =
  let project ~referenced ~allowed =
    [
      src "lib/fixture/store.ml" "let hits () = 0\nlet misses () = 1\n";
      src "lib/fixture/store.mli"
        (Printf.sprintf "val hits : unit -> int\nval misses : unit -> int%s\n"
           (if allowed then "\n  [@@cpla.allow \"unused-export\"]" else ""));
      src "lib/fixture/worker.ml"
        (if referenced then "let total () = Store.hits () + Store.misses ()\n"
         else "let total () = Store.hits ()\n");
      src "lib/fixture/worker.mli" "val total : unit -> int\n";
    ]
  in
  (* worker.mli's own export is deliberately unused too; the assertions are
     about the store interface *)
  let store_hits project =
    List.filter (fun (file, _, _) -> file = "lib/fixture/store.mli") (hits "unused-export" project)
  in
  (match store_hits (project ~referenced:false ~allowed:false) with
  | [ (file, line, msg) ] ->
      Alcotest.(check string) "reported against the interface" "lib/fixture/store.mli" file;
      Alcotest.(check int) "on the val" 2 line;
      check_msg "names the symbol" msg [ "`misses`" ]
  | fs -> Alcotest.failf "expected exactly one unused export, got %d" (List.length fs));
  Alcotest.(check int) "cross-module reference clears it" 0
    (List.length (store_hits (project ~referenced:true ~allowed:false)));
  Alcotest.(check int) "[@@cpla.allow] marks an extension point" 0
    (List.length (store_hits (project ~referenced:false ~allowed:true)))

(* ---- check-not-threaded ---------------------------------------------------- *)

let test_check_not_threaded () =
  let project threaded =
    [
      src "lib/fixture/solver.ml"
        "let solve ?check n =\n  (match check with Some f -> f () | None -> ());\n  n * 2\n";
      src "lib/fixture/solver.mli" "val solve : ?check:(unit -> unit) -> int -> int\n";
      src "lib/fixture/driver.ml"
        (Printf.sprintf "let run ?check n =\n  ignore check;\n  Solver.solve %sn\n"
           (if threaded then "?check " else ""));
      src "lib/fixture/driver.mli" "val run : ?check:(unit -> unit) -> int -> int\n";
    ]
  in
  (match hits "check-not-threaded" (project false) with
  | [ (file, line, msg) ] ->
      Alcotest.(check string) "at the dropping call" "lib/fixture/driver.ml" file;
      Alcotest.(check int) "line" 3 line;
      check_msg "names both ends" msg [ "Solver.solve"; "?check"; "Driver.run" ]
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  Alcotest.(check int) "threading the hook clears it" 0
    (List.length (hits "check-not-threaded" (project true)))

(* ---- reporters ------------------------------------------------------------- *)

let sample_findings () =
  Engine.lint_string ~filename:"lib/fixture/snippet.ml" "let f x = Obj.magic x\n"

let test_github_format () =
  let s = Format.asprintf "%a" (fun fmt -> Report.github fmt) (sample_findings ()) in
  Alcotest.(check bool) "workflow command" true
    (contains s "::error file=lib/fixture/snippet.ml,line=1,col=11,title=cpla-lint obj-magic::");
  (* messages with newlines/percents must be escaped, not break the command *)
  let esc =
    Format.asprintf "%a" (fun fmt -> Report.github fmt)
      [
        Cpla_lint.Finding.file_level ~file:"lib/a.ml" ~rule:"parse-error"
          ~msg:"bad\nline with 100%";
      ]
  in
  Alcotest.(check bool) "newline escaped" true (contains esc "bad%0Aline");
  Alcotest.(check bool) "percent escaped" true (contains esc "100%25")

let test_sarif_format () =
  let s = Format.asprintf "%a" (fun fmt -> Report.sarif fmt) (sample_findings ()) in
  List.iter
    (fun sub -> Alcotest.(check bool) sub true (contains s sub))
    [
      "\"version\":\"2.1.0\"";
      "\"name\":\"cpla-lint\"";
      "\"id\":\"obj-magic\"";
      "\"uri\":\"lib/fixture/snippet.ml\"";
      "\"startLine\":1";
    ]

let suite =
  [
    Alcotest.test_case "domain-race: same-module capture" `Quick test_domain_race_local;
    Alcotest.test_case "domain-race: array needs a write" `Quick
      test_domain_race_array_needs_write;
    Alcotest.test_case "domain-race: cross-module chain" `Quick test_domain_race_cross_module;
    Alcotest.test_case "domain-race: via let-bound kernel" `Quick
      test_domain_race_chain_through_helper;
    Alcotest.test_case "domain-race: allow sites" `Quick test_domain_race_allow;
    Alcotest.test_case "domain-race: test area exempt" `Quick
      test_domain_race_test_area_exempt;
    Alcotest.test_case "impure-kernel: direct" `Quick test_impure_kernel_direct;
    Alcotest.test_case "impure-kernel: via callee" `Quick test_impure_kernel_via_callee;
    Alcotest.test_case "impure-kernel: pure/allow" `Quick test_impure_kernel_pure_and_allow;
    Alcotest.test_case "unused-export" `Quick test_unused_export;
    Alcotest.test_case "check-not-threaded" `Quick test_check_not_threaded;
    Alcotest.test_case "github reporter" `Quick test_github_format;
    Alcotest.test_case "sarif reporter" `Quick test_sarif_format;
  ]
