open Cpla_util

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create 42 in
  let c = Rng.split a in
  let x = Rng.int a 1000000 and y = Rng.int c 1000000 in
  Alcotest.(check bool) "streams diverge" true (x <> y)

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_rng_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "empty mean" 0.0 (Stats.mean [||])

let test_stats_minmax () =
  check_float "max" 4.0 (Stats.max [| 1.0; 4.0; 3.0 |]);
  check_float "min" 1.0 (Stats.min [| 1.0; 4.0; 3.0 |]);
  (* documented: empty inputs yield 0, not ±infinity — an empty released
     set must not poison score accumulators *)
  check_float "empty max" 0.0 (Stats.max [||]);
  check_float "empty min" 0.0 (Stats.min [||])

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Stats.percentile xs 50.0);
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stats.percentile xs 25.0);
  (* empty samples report 0, matching min/max — a latency report over an
     empty bucket must not abort the bench run *)
  check_float "empty p50" 0.0 (Stats.percentile [||] 50.0);
  check_float "empty p99" 0.0 (Stats.percentile [||] 99.0);
  Alcotest.check_raises "p out of range still raises"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [||] 101.0))

let test_stats_stddev () =
  check_float "constant" 0.0 (Stats.stddev [| 3.0; 3.0; 3.0 |]);
  check_float "spread" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_stats_geomean () =
  check_float "geo" 2.0 (Stats.geometric_mean [| 1.0; 2.0; 4.0 |]);
  check_float "nonpositive" 0.0 (Stats.geometric_mean [| 1.0; -2.0 |])

let test_table_render () =
  let t = Table.create ~headers:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_separator t;
  Table.add_row t [ "10"; "20" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.index_opt s 'a' <> None);
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

let test_histogram_counts () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Histogram.add h 0.5;
  Histogram.add h 9.5;
  Histogram.add h 100.0;
  (* counted as overflow, not clamped into the last bin *)
  Histogram.add h (-3.0);
  (* counted as underflow, not clamped into the first bin *)
  let c = Histogram.counts h in
  Alcotest.(check int) "first bin" 1 c.(0);
  Alcotest.(check int) "last bin" 1 c.(9);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Histogram.overflow h);
  Alcotest.(check int) "total" 4 (Histogram.total h)

let test_histogram_nan_and_render () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:4 in
  Histogram.add_all h [| 1.0; Float.nan; 20.0; -1.0; Float.nan |];
  Alcotest.(check int) "nan samples skipped, counted" 2 (Histogram.nan_count h);
  Alcotest.(check int) "nan not in total" 3 (Histogram.total h);
  Alcotest.(check int) "in-range bins unpolluted" 1
    (Array.fold_left ( + ) 0 (Histogram.counts h));
  let r = Histogram.render ~label:"t" h in
  let has needle =
    let n = String.length needle and m = String.length r in
    let rec go i = i + n <= m && (String.sub r i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render shows underflow tail" true (has "below range");
  Alcotest.(check bool) "render shows overflow tail" true (has "above range");
  Alcotest.(check bool) "render shows nan tail" true (has "skipped");
  (* a fully in-range histogram keeps the old, tail-free rendering *)
  let h2 = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:4 in
  Histogram.add h2 5.0;
  let r2 = Histogram.render ~label:"t" h2 in
  Alcotest.(check bool) "no tails when tallies are zero" false
    (let n = String.length r2 in
     let rec go i = i + 5 <= n && (String.sub r2 i 5 = "range" || go (i + 1)) in
     go 0)

let test_histogram_centers () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  check_float "center of bin 0" 0.5 (Histogram.bin_center h 0);
  check_float "center of bin 9" 9.5 (Histogram.bin_center h 9)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_heap_random =
  QCheck.Test.make ~name:"heap pops in sorted order"
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h k i) keys;
      let rec drain acc =
        match Heap.pop_min h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare keys)

let test_float_cmp () =
  Alcotest.(check bool) "equal" true (Float_cmp.approx_eq 1.0 1.0);
  Alcotest.(check bool) "within atol" true (Float_cmp.approx_eq 0.0 1e-13);
  Alcotest.(check bool) "within rtol" true (Float_cmp.approx_eq 1e9 (1e9 +. 0.5));
  Alcotest.(check bool) "outside tolerance" false (Float_cmp.approx_eq 1.0 1.001);
  Alcotest.(check bool) "explicit atol" true (Float_cmp.approx_eq ~rtol:0.0 ~atol:0.1 1.0 1.05);
  Alcotest.(check bool) "infinities equal" true (Float_cmp.approx_eq infinity infinity);
  Alcotest.(check bool) "opposite infinities" false
    (Float_cmp.approx_eq infinity neg_infinity);
  Alcotest.(check bool) "nan never equal" false (Float_cmp.approx_eq nan nan);
  Alcotest.(check bool) "is_zero default" true (Float_cmp.is_zero 1e-13);
  Alcotest.(check bool) "is_zero exact rejects" false (Float_cmp.is_zero ~atol:0.0 1e-300);
  Alcotest.(check bool) "is_zero exact neg zero" true (Float_cmp.is_zero ~atol:0.0 (-0.0));
  Alcotest.(check bool) "nonzero nan" true (Float_cmp.nonzero nan);
  Alcotest.check_raises "negative tolerance"
    (Invalid_argument "Float_cmp: atol must be a non-negative float") (fun () ->
      ignore (Float_cmp.is_zero ~atol:(-1.0) 0.0))

let test_exn_async () =
  Alcotest.(check bool) "oom is async" true (Exn.is_async Out_of_memory);
  Alcotest.(check bool) "stack overflow is async" true (Exn.is_async Stack_overflow);
  Alcotest.(check bool) "break is async" true (Exn.is_async Sys.Break);
  Alcotest.(check bool) "failure is not" false (Exn.is_async (Failure "x"));
  Alcotest.check_raises "reraises async" Stack_overflow (fun () ->
      Exn.reraise_if_async Stack_overflow);
  Exn.reraise_if_async Not_found (* returns unit for ordinary exceptions *)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "float_cmp" `Quick test_float_cmp;
    Alcotest.test_case "exn async discipline" `Quick test_exn_async;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng invalid bound" `Quick test_rng_invalid;
    Alcotest.test_case "stats mean" `Quick test_stats_mean;
    Alcotest.test_case "stats min/max" `Quick test_stats_minmax;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "stats geometric mean" `Quick test_stats_geomean;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "histogram counts+range" `Quick test_histogram_counts;
    Alcotest.test_case "histogram nan+render" `Quick test_histogram_nan_and_render;
    Alcotest.test_case "histogram centers" `Quick test_histogram_centers;
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    QCheck_alcotest.to_alcotest test_heap_random;
  ]
