open Cpla_serve

(* The serve subsystem's contracts: manifest parsing, the scheduling policy,
   cooperative cancellation/deadlines, fault isolation, and the determinism
   guarantee that a batch drained in parallel reports the same per-job
   results as sequential runs. *)

let tiny_spec ~name ~nets ~seed =
  {
    Cpla_route.Synth.default_spec with
    Cpla_route.Synth.name;
    width = 16;
    height = 16;
    num_layers = 4;
    num_nets = nets;
    seed;
    hotspots = 1;
    blockage_fraction = 0.02;
  }

let tiny ?(priority = 0) ?deadline_s ?(nets = 120) ?(seed = 1) ?(iters = 2) id =
  {
    Job.id;
    label = Printf.sprintf "tiny-%d" id;
    source = Job.Synth (tiny_spec ~name:(Printf.sprintf "tiny-%d" id) ~nets ~seed);
    config =
      { Cpla.Config.default with Cpla.Config.max_outer_iters = iters; critical_ratio = 0.02 };
    priority;
    deadline_s;
  }

let poison id = { (tiny id) with Job.source = Job.File "/nonexistent/poison.gr" }

(* ---- manifest parsing ---------------------------------------------------- *)

let test_manifest_parse () =
  let text =
    "# comment line\n\
     adaptec1 ratio=0.01 priority=3 name=first\n\
     \n\
     designs/big.gr method=ilp deadline=2.5 iters=4 workers=2  # trailing comment\n\
     custom.gr\n"
  in
  match Job.parse_manifest ~default_deadline_s:9.0 text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok specs ->
      Alcotest.(check int) "job count" 3 (List.length specs);
      let j0 = List.nth specs 0 and j1 = List.nth specs 1 and j2 = List.nth specs 2 in
      Alcotest.(check (list int)) "ids in manifest order" [ 0; 1; 2 ]
        (List.map (fun s -> s.Job.id) specs);
      (match j0.Job.source with
      | Job.Bench "adaptec1" -> ()
      | _ -> Alcotest.fail "bare name classifies as Bench");
      Alcotest.(check string) "name= overrides label" "first" j0.Job.label;
      Alcotest.(check int) "priority" 3 j0.Job.priority;
      Alcotest.(check (float 1e-9)) "ratio" 0.01 j0.Job.config.Cpla.Config.critical_ratio;
      Alcotest.(check (option (float 1e-9))) "default deadline applies" (Some 9.0)
        j0.Job.deadline_s;
      (match j1.Job.source with
      | Job.File "designs/big.gr" -> ()
      | _ -> Alcotest.fail "path classifies as File");
      Alcotest.(check bool) "method=ilp" true (j1.Job.config.Cpla.Config.method_ = Cpla.Config.Ilp);
      Alcotest.(check (option (float 1e-9))) "explicit deadline wins" (Some 2.5) j1.Job.deadline_s;
      Alcotest.(check int) "iters" 4 j1.Job.config.Cpla.Config.max_outer_iters;
      Alcotest.(check int) "inner workers" 2 j1.Job.config.Cpla.Config.workers;
      match j2.Job.source with
      | Job.File "custom.gr" -> ()
      | _ -> Alcotest.fail ".gr suffix classifies as File"

let test_manifest_rejects () =
  let expect_error text =
    match Job.parse_manifest text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed manifest %S" text
  in
  expect_error "adaptec1 bogus=1\n";
  expect_error "adaptec1 ratio=2.0\n";
  expect_error "adaptec1 ratio=x\n";
  expect_error "adaptec1 deadline=-1\n";
  expect_error "adaptec1 workers=0\n";
  expect_error "adaptec1 iters=-3\n";
  expect_error "method=sdp\n";
  expect_error "adaptec1 method=tila\n"

(* ---- token ---------------------------------------------------------------- *)

let test_token () =
  let t = Token.create () in
  Alcotest.(check bool) "fresh token is live" false (Token.cancelled t);
  Token.check t;
  Token.cancel t;
  Alcotest.(check bool) "cancel fires" true (Token.cancelled t);
  (match Token.check t with
  | () -> Alcotest.fail "check must raise after cancel"
  | exception Token.Cancelled Token.User -> ()
  | exception Token.Cancelled _ -> Alcotest.fail "wrong cancellation reason");
  let d = Token.create ~deadline_s:0.0 () in
  (match Token.check d with
  | () -> Alcotest.fail "0s deadline must fire on first poll"
  | exception Token.Cancelled Token.Deadline -> ());
  (* the cause is latched: a later user cancel does not rewrite history *)
  Token.cancel d;
  Alcotest.(check bool) "deadline reason latched" true (Token.status d = Some Token.Deadline);
  let far = Token.create ~deadline_s:3600.0 () in
  Alcotest.(check bool) "future deadline is live" false (Token.cancelled far)

(* ---- priority queue ------------------------------------------------------- *)

let test_queue_policy () =
  let q = Queue.create () in
  Queue.add q ~priority:0 ~cost:10.0 "low";
  Queue.add q ~priority:5 ~cost:20.0 "mid-expensive";
  Queue.add q ~priority:5 ~cost:5.0 "mid-cheap";
  Queue.add q ~priority:9 ~cost:50.0 "high";
  Queue.add q ~priority:5 ~cost:5.0 "mid-cheap-later";
  Alcotest.(check (list string)) "priority desc, cost asc, FIFO ties"
    [ "high"; "mid-cheap"; "mid-cheap-later"; "mid-expensive"; "low" ]
    (Queue.drain q);
  Alcotest.(check bool) "drained empty" true (Queue.is_empty q)

(* ---- driver cancellation hook --------------------------------------------- *)

let test_driver_check_restores () =
  let graph, nets = Cpla_route.Synth.generate (tiny_spec ~name:"drv" ~nets:200 ~seed:11) in
  let routed = Cpla_route.Router.route_all ~graph nets in
  let asg = Cpla_route.Assignment.create ~graph ~nets ~trees:routed.Cpla_route.Router.trees in
  Cpla_route.Init_assign.run asg;
  let engine = Cpla_timing.Incremental.create asg in
  let released = Cpla_timing.Incremental.select engine ~ratio:0.05 in
  let polls = ref 0 in
  let check () =
    incr polls;
    if !polls >= 2 then raise (Token.Cancelled Token.User)
  in
  (match Cpla.Driver.optimize_released ~engine ~check asg ~released with
  | _ -> Alcotest.fail "expected cancellation to escape the driver"
  | exception Token.Cancelled Token.User -> ());
  Alcotest.(check bool) "cancelled mid-iteration leaves a fully assigned state" true
    (Cpla_route.Assignment.fully_assigned asg);
  let report = Cpla_route.Verify.check asg in
  let structural =
    List.filter
      (function
        | Cpla_route.Verify.Edge_overflow _ | Cpla_route.Verify.Via_overflow _ -> false
        | _ -> true)
      report.Cpla_route.Verify.violations
  in
  Alcotest.(check int) "no structural damage after rollback" 0 (List.length structural)

(* Uncoupled partitions (no shared capacity rows, no intra-partition via
   pairs) take an argmin fast path that skips the solver — it must still
   poll [check], or a run over a sparse design becomes uncancellable for a
   whole sweep.  2-pin nets, ample capacity and single-segment partitions
   force every leaf onto that path; the hook must fire more often than the
   once-per-iteration poll the outer loop provides. *)
let test_driver_check_polls_uncoupled_fast_path () =
  let run_with ~workers =
    let spec =
      {
        Cpla_route.Synth.default_spec with
        Cpla_route.Synth.name = "uncoupled";
        width = 16;
        height = 16;
        num_layers = 4;
        num_nets = 150;
        capacity = 32;
        seed = 7;
        mean_extra_pins = 0.0;
        blockage_fraction = 0.0;
      }
    in
    let graph, nets = Cpla_route.Synth.generate spec in
    let routed = Cpla_route.Router.route_all ~graph nets in
    let asg =
      Cpla_route.Assignment.create ~graph ~nets ~trees:routed.Cpla_route.Router.trees
    in
    Cpla_route.Init_assign.run asg;
    let engine = Cpla_timing.Incremental.create asg in
    let released = Cpla_timing.Incremental.select engine ~ratio:0.1 in
    let config =
      {
        Cpla.Config.default with
        Cpla.Config.workers;
        max_segments_per_partition = 1;
        max_outer_iters = 1;
      }
    in
    let polls = Atomic.make 0 in
    let check () =
      if Atomic.fetch_and_add polls 1 >= 2 then raise (Token.Cancelled Token.User)
    in
    (match Cpla.Driver.optimize_released ~config ~engine ~check asg ~released with
    | _ -> Alcotest.failf "workers=%d: expected cancellation to escape" workers
    | exception Token.Cancelled Token.User -> ()
    | exception Cpla_util.Pool.Worker_failure (Token.Cancelled Token.User) -> ());
    Alcotest.(check bool) "uncoupled solves polled the hook" true (Atomic.get polls >= 3);
    Alcotest.(check bool) "state fully assigned after rollback" true
      (Cpla_route.Assignment.fully_assigned asg)
  in
  run_with ~workers:1;
  run_with ~workers:2

(* ---- scheduler properties ------------------------------------------------- *)

let terminal_events results_len specs ~workers =
  (* run a batch and count terminal events per job id *)
  let counts = Hashtbl.create 8 in
  let on_event = function
    | Scheduler.Finished (s, _) ->
        Hashtbl.replace counts s.Job.id (1 + Option.value ~default:0 (Hashtbl.find_opt counts s.Job.id))
    | Scheduler.Started _ -> ()
  in
  let results = Scheduler.run ~workers ~on_event specs in
  Alcotest.(check int) "one result per submitted job" results_len (Array.length results);
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "job %d settles exactly once" s.Job.id)
        1
        (Option.value ~default:0 (Hashtbl.find_opt counts s.Job.id)))
    specs;
  results

let test_every_job_settles_once () =
  let specs =
    [ tiny 0 ~seed:21; poison 1; tiny 2 ~seed:22; { (tiny 3 ~seed:23) with Job.deadline_s = Some 0.0 } ]
  in
  let results = terminal_events 4 specs ~workers:2 in
  let status id =
    let _, t = results.(id) in
    t
  in
  (match status 1 with
  | Job.Failed _ -> ()
  | t -> Alcotest.failf "poison job must fail, got %s" (Job.status_string t));
  (match status 3 with
  | Job.Timed_out _ -> ()
  | t -> Alcotest.failf "0s-deadline job must time out, got %s" (Job.status_string t));
  List.iter
    (fun id ->
      match status id with
      | Job.Done _ -> ()
      | t -> Alcotest.failf "job %d must finish ok, got %s" id (Job.status_string t))
    [ 0; 2 ]

let test_priority_order () =
  let specs =
    [
      tiny 0 ~priority:0 ~nets:100 ~seed:31;
      tiny 1 ~priority:5 ~nets:200 ~seed:32;
      tiny 2 ~priority:5 ~nets:100 ~seed:33;
      tiny 3 ~priority:9 ~nets:150 ~seed:34;
    ]
  in
  let started = ref [] in
  let on_event = function
    | Scheduler.Started s -> started := s.Job.id :: !started
    | Scheduler.Finished _ -> ()
  in
  ignore (Scheduler.run ~workers:1 ~on_event specs);
  Alcotest.(check (list int))
    "start order: priority desc, then shortest-expected-first, then FIFO" [ 3; 2; 1; 0 ]
    (List.rev !started)

let test_cancel_never_commits () =
  (* job 0 occupies the single worker; job 1 is revoked while queued *)
  let specs = [ tiny 0 ~nets:600 ~seed:41 ~iters:3; tiny 1 ~seed:42 ] in
  let batch = Scheduler.submit ~workers:1 specs in
  Scheduler.cancel batch ~id:1;
  let results = Scheduler.wait batch in
  (match results.(1) with
  | _, Job.Cancelled _ -> ()
  | _, t -> Alcotest.failf "cancelled job must settle Cancelled, got %s" (Job.status_string t));
  (match results.(0) with
  | _, Job.Done _ -> ()
  | _, t -> Alcotest.failf "running job unaffected by cancel, got %s" (Job.status_string t));
  (* a timed-out job is terminal non-ok: it never reports success *)
  let r = Scheduler.run_one { (tiny 9 ~seed:43) with Job.deadline_s = Some 0.0 } in
  Alcotest.(check bool) "timed-out job is not ok" false (Job.is_ok r)

let test_poison_isolation_matches_sequential () =
  let a = tiny 0 ~seed:51 and b = tiny 2 ~seed:52 in
  let results = Scheduler.run ~workers:2 [ a; poison 1; b ] in
  let metrics_of id =
    match results.(id) with
    | _, Job.Done m -> m
    | _, t -> Alcotest.failf "job %d should be ok, got %s" id (Job.status_string t)
  in
  let seq_of spec =
    match Scheduler.run_one spec with
    | Job.Done m -> m
    | t -> Alcotest.failf "sequential run should be ok, got %s" (Job.status_string t)
  in
  Alcotest.(check bool) "job 0 identical to its sequential run" true
    (Job.same_result (metrics_of 0) (seq_of a));
  Alcotest.(check bool) "job 2 identical to its sequential run" true
    (Job.same_result (metrics_of 2) (seq_of b))

let test_parallel_matches_sequential () =
  let specs = List.init 6 (fun i -> tiny i ~nets:(100 + (20 * i)) ~seed:(60 + i)) in
  let parallel = Scheduler.run ~workers:3 specs in
  List.iteri
    (fun i spec ->
      match (parallel.(i), Scheduler.run_one spec) with
      | (_, Job.Done p), Job.Done s ->
          Alcotest.(check bool)
            (Printf.sprintf "job %d: parallel == sequential" i)
            true (Job.same_result p s)
      | (_, Job.Done _), t ->
          Alcotest.failf "job %d did not finish ok sequentially (%s)" i (Job.status_string t)
      | (_, t), _ ->
          Alcotest.failf "job %d did not finish ok in parallel (%s)" i (Job.status_string t))
    specs

(* ---- session regressions --------------------------------------------------- *)

(* Wait until the session's single worker has claimed everything queued so
   far — otherwise a job submitted next could be claimed first (the policy
   prefers shortest-expected-cost among ready jobs). *)
let wait_claimed session =
  let watch = Cpla_util.Timer.wall () in
  let rec go () =
    if Session.pending session = 0 && Session.running session >= 1 then ()
    else if Cpla_util.Timer.elapsed_s watch > 30.0 then
      Alcotest.fail "worker never claimed the queued job"
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

let test_session_queued_then_cancelled () =
  (* one worker, occupied by a slow job: job 1 waits in the queue, is
     cancelled there, and must settle Cancelled at once — never Started,
     never claimed by the worker *)
  let session = Session.create ~workers:1 () in
  let events = ref [] in
  let m = Mutex.create () in
  let on_event ev =
    Mutex.protect m (fun () -> events := ev :: !events)
  in
  let h0 = Session.submit session ~on_event (tiny 0 ~nets:600 ~seed:81 ~iters:3) in
  wait_claimed session;
  let h1 = Session.submit session ~on_event (tiny 1 ~seed:82) in
  Alcotest.(check bool) "cancel of a queued job wins" true (Session.cancel session ~id:1);
  (* the queued job's Finished fired on this domain before cancel returned *)
  (match Session.await h1 with
  | Job.Cancelled { partial = None } -> ()
  | t -> Alcotest.failf "queued-then-cancelled job settled %s" (Job.status_string t));
  (match Session.await h0 with
  | Job.Done _ -> ()
  | t -> Alcotest.failf "running job disturbed by the cancel: %s" (Job.status_string t));
  Session.drain session;
  let evs = List.rev !events in
  let of_job id =
    List.filter
      (function
        | Session.Submitted s | Session.Started s | Session.Progress (s, _)
        | Session.Finished (s, _) ->
            s.Job.id = id)
      evs
  in
  (match of_job 1 with
  | [ Session.Submitted _; Session.Finished (_, Job.Cancelled _) ] -> ()
  | l ->
      Alcotest.failf "queued job saw %d events; it must never start" (List.length l));
  Alcotest.(check bool) "cancel of a settled job loses" false (Session.cancel session ~id:1)

let test_session_deadline_from_arrival () =
  (* deadlines are a latency SLA measured from submit: a job whose budget
     is consumed entirely by queue wait settles Timed_out without ever
     computing (no Started, no Progress) *)
  let session = Session.create ~workers:1 () in
  let events = ref [] in
  let m = Mutex.create () in
  let on_event ev = Mutex.protect m (fun () -> events := ev :: !events) in
  let h0 = Session.submit session ~on_event (tiny 0 ~nets:1200 ~seed:83 ~iters:6) in
  wait_claimed session;
  (* job 0 has ~1s of compute left; job 1's whole budget burns in queue *)
  let h1 =
    Session.submit session ~on_event (tiny 1 ~seed:84 ~deadline_s:0.05)
  in
  (match Session.await h1 with
  | Job.Timed_out _ -> ()
  | t -> Alcotest.failf "expired-while-queued job settled %s" (Job.status_string t));
  (match Session.await h0 with
  | Job.Done _ -> ()
  | t -> Alcotest.failf "slow job settled %s" (Job.status_string t));
  Session.drain session;
  let progressed =
    List.exists
      (function Session.Progress (s, _) -> s.Job.id = 1 | _ -> false)
      !events
  in
  Alcotest.(check bool) "expired job never reported progress" false progressed

(* ---- report --------------------------------------------------------------- *)

let test_report_lines () =
  let spec = tiny 7 ~seed:71 in
  let m =
    {
      Job.wirelength = 100;
      avg_tcp = 1.5;
      max_tcp = 2.0;
      via_overflow = 3;
      edge_overflow = 0;
      released = 2;
      wall_s = 0.25;
    }
  in
  let ok_line = Report.line spec (Job.Done m) in
  Alcotest.(check bool) "result lines start with 'job '" true
    (String.length ok_line > 4 && String.sub ok_line 0 4 = "job ");
  Alcotest.(check bool) "ok line carries metrics" true
    (String.length ok_line > String.length (String.concat "" [ "job" ]));
  let results = [| (spec, Job.Done m); (tiny 8 ~seed:72, Job.Cancelled { partial = None }) |] in
  Alcotest.(check bool) "all_ok false with a cancelled job" false (Report.all_ok results);
  let s = Report.summary results in
  Alcotest.(check bool) "summary prefixed serve:" true (String.sub s 0 6 = "serve:")

let suite =
  [
    Alcotest.test_case "manifest: parse fields and classification" `Quick test_manifest_parse;
    Alcotest.test_case "manifest: malformed lines rejected" `Quick test_manifest_rejects;
    Alcotest.test_case "token: cancel, deadline, latching" `Quick test_token;
    Alcotest.test_case "queue: scheduling policy order" `Quick test_queue_policy;
    Alcotest.test_case "driver: cancellation restores a consistent state" `Quick
      test_driver_check_restores;
    Alcotest.test_case "driver: uncoupled fast path polls check" `Quick
      test_driver_check_polls_uncoupled_fast_path;
    Alcotest.test_case "scheduler: every job settles exactly once" `Quick
      test_every_job_settles_once;
    Alcotest.test_case "scheduler: priority order among ready jobs" `Quick test_priority_order;
    Alcotest.test_case "scheduler: cancelled/timed-out jobs never commit" `Quick
      test_cancel_never_commits;
    Alcotest.test_case "scheduler: poisoned job isolated, others == sequential" `Quick
      test_poison_isolation_matches_sequential;
    Alcotest.test_case "scheduler: parallel batch == sequential runs" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "session: queued-then-cancelled job never starts" `Quick
      test_session_queued_then_cancelled;
    Alcotest.test_case "session: deadline measured from arrival, not claim" `Quick
      test_session_deadline_from_arrival;
    Alcotest.test_case "report: line and summary format" `Quick test_report_lines;
  ]
