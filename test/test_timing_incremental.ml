open Cpla_grid
open Cpla_route
open Cpla_timing

(* Equivalence property: after arbitrary sequences of set_layer / unassign /
   re-assign, every cached query of the incremental engine matches a
   from-scratch analysis to within 1e-12. *)

let eps = 1e-12

let small_design seed =
  let spec =
    {
      Synth.name = "incr-test";
      width = 16;
      height = 16;
      num_layers = 4;
      num_nets = 120;
      capacity = 8;
      seed;
      mean_extra_pins = 1.5;
      local_fraction = 0.75;
      hotspots = 1;
      blockage_fraction = 0.0;
    }
  in
  let graph, nets = Synth.generate spec in
  let routed = Router.route_all ~graph nets in
  let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
  Init_assign.run asg;
  asg

let check_float name a b =
  if Float.abs (a -. b) > eps then Alcotest.failf "%s: cached %.17g vs scratch %.17g" name a b

let check_net_equivalence asg eng i =
  let cached = Incremental.detail eng i in
  let scratch = Elmore.analyze asg i in
  check_float (Printf.sprintf "net %d worst_delay" i) cached.Elmore.worst_delay
    scratch.Elmore.worst_delay;
  Alcotest.(check int)
    (Printf.sprintf "net %d sink count" i)
    (Array.length scratch.Elmore.sink_delays)
    (Array.length cached.Elmore.sink_delays);
  Array.iteri
    (fun k (v, d) ->
      let v', d' = cached.Elmore.sink_delays.(k) in
      Alcotest.(check int) (Printf.sprintf "net %d sink %d node" i k) v v';
      check_float (Printf.sprintf "net %d sink %d delay" i k) d' d)
    scratch.Elmore.sink_delays;
  Array.iteri
    (fun s cd -> check_float (Printf.sprintf "net %d seg %d cd" i s) cached.Elmore.seg_cd.(s) cd)
    scratch.Elmore.seg_cd;
  let cached_pi = Incremental.path_info eng i in
  let scratch_pi = Critical.path_info asg i in
  Alcotest.(check (array int))
    (Printf.sprintf "net %d path_segs" i)
    scratch_pi.Critical.path_segs cached_pi.Critical.path_segs;
  Array.iteri
    (fun s r ->
      check_float
        (Printf.sprintf "net %d seg %d attach_r" i s)
        cached_pi.Critical.branch_attach_r.(s) r)
    scratch_pi.Critical.branch_attach_r

let check_all_nets asg eng =
  for i = 0 to Assignment.num_nets asg - 1 do
    check_net_equivalence asg eng i
  done

let random_layer rng tech dir =
  let layers = Array.of_list (Tech.layers_of_dir tech dir) in
  Cpla_util.Rng.choose rng layers

(* Random net with at least one segment. *)
let random_seg_net rng asg =
  let n = Assignment.num_nets asg in
  let rec pick tries =
    if tries > 200 then None
    else
      let i = Cpla_util.Rng.int rng n in
      if Array.length (Assignment.segments asg i) > 0 then Some i else pick (tries + 1)
  in
  pick 0

let mutate_randomly rng asg ops =
  let tech = Assignment.tech asg in
  for _ = 1 to ops do
    match random_seg_net rng asg with
    | None -> ()
    | Some net ->
        let segs = Assignment.segments asg net in
        let seg = Cpla_util.Rng.int rng (Array.length segs) in
        let dir = segs.(seg).Segment.dir in
        if Cpla_util.Rng.int rng 10 = 0 then begin
          (* unassign then re-assign: the engine must not serve the state in
             between as valid once the segment comes back *)
          let back = random_layer rng tech dir in
          Assignment.unassign asg ~net ~seg;
          Assignment.set_layer asg ~net ~seg ~layer:back
        end
        else Assignment.set_layer asg ~net ~seg ~layer:(random_layer rng tech dir)
  done

let test_equivalence_after_random_ops () =
  let asg = small_design 42 in
  let eng = Incremental.create asg in
  let rng = Cpla_util.Rng.create 7 in
  check_all_nets asg eng;
  for _round = 1 to 5 do
    mutate_randomly rng asg 40;
    check_all_nets asg eng
  done

let test_select_and_aggregate_equivalence () =
  let asg = small_design 43 in
  let eng = Incremental.create asg in
  let rng = Cpla_util.Rng.create 11 in
  List.iter
    (fun ratio ->
      mutate_randomly rng asg 30;
      Alcotest.(check (array int))
        (Printf.sprintf "select at %.3f" ratio)
        (Critical.select asg ~ratio) (Incremental.select eng ~ratio);
      let released = Critical.select asg ~ratio in
      let avg, mx = Critical.avg_max_tcp asg released in
      let avg', mx' = Incremental.avg_max_tcp eng released in
      check_float "avg_tcp" avg' avg;
      check_float "max_tcp" mx' mx;
      Alcotest.(check bool)
        "pin_delays equal" true
        (Critical.pin_delays asg released = Incremental.pin_delays eng released))
    [ 0.05; 0.1; 0.5 ]

let test_dirty_tracking () =
  let asg = small_design 44 in
  let eng = Incremental.create asg in
  Incremental.refresh eng;
  Alcotest.(check int) "clean after refresh" 0 (Incremental.dirty_count eng);
  match random_seg_net (Cpla_util.Rng.create 3) asg with
  | None -> Alcotest.fail "design has no multi-tile nets"
  | Some net ->
      let tech = Assignment.tech asg in
      let segs = Assignment.segments asg net in
      let cur = Assignment.layer asg ~net ~seg:0 in
      (* a no-op set_layer must not invalidate *)
      Assignment.set_layer asg ~net ~seg:0 ~layer:cur;
      Alcotest.(check bool) "no-op keeps clean" false (Incremental.is_dirty eng net);
      let alt =
        List.find (fun l -> l <> cur) (Tech.layers_of_dir tech segs.(0).Segment.dir)
      in
      Assignment.set_layer asg ~net ~seg:0 ~layer:alt;
      Alcotest.(check bool) "move dirties the net" true (Incremental.is_dirty eng net);
      Alcotest.(check int) "exactly one dirty net" 1 (Incremental.dirty_count eng);
      ignore (Incremental.net_tcp eng net);
      Alcotest.(check bool) "query revalidates" false (Incremental.is_dirty eng net);
      Assignment.set_layer asg ~net ~seg:0 ~layer:cur;
      check_net_equivalence asg eng net

let test_parallel_refresh_equivalence () =
  let asg = small_design 45 in
  let eng = Incremental.create asg in
  let rng = Cpla_util.Rng.create 19 in
  mutate_randomly rng asg 120;
  Alcotest.(check bool) "many nets dirty" true (Incremental.dirty_count eng > 8);
  Incremental.refresh ~workers:4 eng;
  Alcotest.(check int) "clean after parallel refresh" 0 (Incremental.dirty_count eng);
  check_all_nets asg eng;
  (* refreshing a clean engine is a no-op *)
  Incremental.refresh ~workers:4 eng;
  check_all_nets asg eng

let test_engine_tracks_driver () =
  (* End-to-end: the Driver mutates the assignment through every code path
     (unassign, solve, set_layer, restore); afterwards the shared engine must
     agree with a from-scratch analysis, and the report's metrics must match. *)
  let asg = small_design 46 in
  let eng = Incremental.create asg in
  let released = Incremental.select eng ~ratio:0.05 in
  let report = Cpla.Driver.optimize_released ~engine:eng asg ~released in
  let avg, mx = Critical.avg_max_tcp asg released in
  check_float "report avg_tcp" report.Cpla.Driver.avg_tcp avg;
  check_float "report max_tcp" report.Cpla.Driver.max_tcp mx;
  check_all_nets asg eng

let test_empty_released_driver () =
  let asg = small_design 47 in
  let report = Cpla.Driver.optimize_released asg ~released:[||] in
  Alcotest.(check (float 0.0)) "avg 0 on empty release" 0.0 report.Cpla.Driver.avg_tcp;
  Alcotest.(check (float 0.0)) "max 0 on empty release" 0.0 report.Cpla.Driver.max_tcp;
  Alcotest.(check int) "no iterations" 0 report.Cpla.Driver.iterations

let suite =
  [
    Alcotest.test_case "equivalence after random ops" `Quick test_equivalence_after_random_ops;
    Alcotest.test_case "select/aggregate equivalence" `Quick
      test_select_and_aggregate_equivalence;
    Alcotest.test_case "dirty tracking" `Quick test_dirty_tracking;
    Alcotest.test_case "parallel refresh equivalence" `Quick
      test_parallel_refresh_equivalence;
    Alcotest.test_case "engine tracks the driver" `Quick test_engine_tracks_driver;
    Alcotest.test_case "empty released set" `Quick test_empty_released_driver;
  ]
