(* cpla_lint — static analyzer for the CPLA sources.

   Parses every .ml under the given paths with ppxlib and enforces the
   project's domain-safety / determinism / hygiene rules (see `--rules` or
   DESIGN.md).  Exit status: 0 clean, 1 findings, 124 usage/IO error —
   so CI can gate on it. *)

open Cmdliner

let run json list_rules paths =
  if list_rules then begin
    Cpla_lint.Report.rules Format.std_formatter;
    0
  end
  else
    match Cpla_lint.Engine.lint_paths paths with
    | [] ->
        if json then Cpla_lint.Report.json Format.std_formatter []
        else Format.printf "cpla-lint: 0 findings@.";
        0
    | findings ->
        if json then Cpla_lint.Report.json Format.std_formatter findings
        else Cpla_lint.Report.human Format.std_formatter findings;
        1
    | exception Sys_error msg ->
        Format.eprintf "cpla-lint: %s@." msg;
        124

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit findings as a JSON object.")

let list_rules =
  Arg.(value & flag & info [ "rules" ] ~doc:"List the rule registry and exit.")

let paths =
  Arg.(
    value
    & pos_all string [ "lib"; "bin"; "bench" ]
    & info [] ~docv:"PATH"
        ~doc:"Files or directories to lint (default: lib bin bench).")

let cmd =
  let doc = "static analysis for the CPLA sources" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Enforces the project's domain-safety, determinism and hygiene \
         invariants on every .ml file under $(i,PATH).  Suppress a single \
         finding with a [\\@cpla.allow \"rule-id\"] attribute on the \
         offending expression or let-binding, or a whole file with \
         [\\@\\@\\@cpla.allow \"rule-id\"].";
      `S Manpage.s_exit_status;
      `P "0 on a clean tree, 1 when there are findings, 124 on IO errors.";
    ]
  in
  Cmd.v
    (Cmd.info "cpla_lint" ~doc ~man ~exits:[])
    Term.(const run $ json $ list_rules $ paths)

let () = exit (Cmd.eval' cmd)
