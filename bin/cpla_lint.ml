(* cpla_lint — static analyzer for the CPLA sources.

   Parses every .ml/.mli under the given paths with ppxlib, builds a
   project-wide symbol table and call graph, and enforces the project's
   domain-safety / determinism / hygiene rules (see `--rules` or
   DESIGN.md).  Paths not being linted are still loaded as resolution
   context, so a partial lint sees the whole project.  Per-file summaries
   persist across runs (`--cache`, default _build/.cpla-lint-cache), so a
   warm run only re-analyzes changed files and their importers.  Exit
   status: 0 clean, 1 findings, 124 usage/IO error — so CI can gate on
   it. *)

open Cmdliner

type format = Human | Json | Github | Sarif

let render ?stats = function
  | Human -> Cpla_lint.Report.human
  | Json -> Cpla_lint.Report.json ?stats
  | Github -> Cpla_lint.Report.github
  | Sarif -> Cpla_lint.Report.sarif

(* machine formats must stay well-formed even on a clean tree *)
let render_empty ?stats fmt formatter =
  match fmt with
  | Human -> Format.fprintf formatter "cpla-lint: 0 findings@."
  | f -> render ?stats f formatter []

let parse_filter filter =
  match filter with
  | None -> Ok None
  | Some spec ->
      let ids =
        String.split_on_char ',' spec |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      let unknown = List.filter (fun id -> not (Cpla_lint.Rule.known id)) ids in
      if ids = [] then Error "empty --filter"
      else if unknown <> [] then
        Error
          (Printf.sprintf "unknown rule id(s) in --filter: %s (see --rules)"
             (String.concat ", " unknown))
      else Ok (Some ids)

let run fmt filter list_rules cache no_cache workers paths =
  if list_rules then begin
    Cpla_lint.Report.rules Format.std_formatter;
    0
  end
  else
    match parse_filter filter with
    | Error msg ->
        Format.eprintf "cpla-lint: %s@." msg;
        124
    | Ok filter -> (
        let cache_file = if no_cache then None else Some cache in
        match Cpla_lint.Engine.lint_paths ~workers ?cache_file paths with
        | all, stats -> (
            let findings =
              match filter with
              | None -> all
              | Some ids -> List.filter (fun f -> List.mem f.Cpla_lint.Finding.rule ids) all
            in
            match findings with
            | [] ->
                render_empty ~stats fmt Format.std_formatter;
                0
            | findings ->
                render ~stats fmt Format.std_formatter findings;
                1)
        | exception Sys_error msg ->
            Format.eprintf "cpla-lint: %s@." msg;
            124)

let fmt =
  let fmt_conv =
    Arg.enum [ ("human", Human); ("json", Json); ("github", Github); ("sarif", Sarif) ]
  in
  Arg.(
    value & opt fmt_conv Human
    & info [ "format" ]
        ~doc:
          "Output format: $(b,human), $(b,json), $(b,github) (workflow-command \
           annotations) or $(b,sarif) (SARIF 2.1.0).")

(* --json predates --format; kept as an alias so existing callers survive *)
let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Shorthand for $(b,--format json).")

let filter =
  Arg.(
    value
    & opt (some string) None
    & info [ "filter" ] ~docv:"RULE_ID[,...]"
        ~doc:"Only report findings from the given comma-separated rule ids.")

let list_rules =
  Arg.(
    value & flag
    & info [ "rules" ]
        ~doc:
          "List the rule registry (with each rule's file-local vs whole-program \
           analysis tier) and exit.")

let cache =
  Arg.(
    value
    & opt string Cpla_lint.Summary.default_path
    & info [ "cache" ] ~docv:"PATH"
        ~doc:
          "Summary cache file.  Loaded before the run (stale or corrupt caches \
           degrade to a cold run) and refreshed after; a warm run only \
           re-analyzes files whose content — or whose imports' content — \
           changed.  Findings are identical either way.")

let no_cache =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Neither read nor write the summary cache (always a cold run).")

let workers =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Domains used to summarize files in parallel (parsing stays \
           sequential).  Findings do not depend on $(docv).")

let paths =
  Arg.(
    value
    & pos_all string [ "lib"; "bin"; "bench"; "test" ]
    & info [] ~docv:"PATH"
        ~doc:"Files or directories to lint (default: lib bin bench test).")

let cmd =
  let doc = "static analysis for the CPLA sources" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Enforces the project's domain-safety, determinism and hygiene \
         invariants.  File-local rules run on each .ml alone; whole-program \
         rules (domain-race, impure-kernel, unused-export, \
         check-not-threaded) run over a project-wide symbol table and call \
         graph built from every source under $(i,PATH) plus the default \
         roots.  Suppress a single finding with a [\\@cpla.allow \
         \"rule-id\"] attribute on the offending expression or let-binding \
         (for domain-race: at the capture or the creation site), or a whole \
         file with [\\@\\@\\@cpla.allow \"rule-id\"].";
      `S Manpage.s_exit_status;
      `P "0 on a clean tree, 1 when there are findings, 124 on IO errors.";
    ]
  in
  Cmd.v
    (Cmd.info "cpla_lint" ~doc ~man ~exits:[])
    Term.(
      const (fun fmt json -> run (if json then Json else fmt))
      $ fmt $ json $ filter $ list_rules $ cache $ no_cache $ workers $ paths)

let () = exit (Cmd.eval' cmd)
