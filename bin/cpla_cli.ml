(* cpla — command-line front end.

   Subcommands:
     synth     generate a synthetic benchmark and write it as ISPD'08 text
     optimize  route + initial assignment + timing-driven layer assignment
     serve     drain a manifest of optimisation jobs over a worker pool
     daemon    long-lived TCP job service over the persistent scheduler session
     submit    push a job to a running daemon and stream its status events
     density   route a design and print its congestion map
     bench     regenerate a paper experiment (fig1/fig3b/fig7/fig8/fig9/table2)
     list      list the built-in benchmark suite *)

open Cmdliner
open Cpla_route
open Cpla_timing

(* Binary mode so ISPD'08 text round-trips byte-identically on any platform;
   Fun.protect so an exception mid-I/O (parse error, full disk) cannot leak
   the channel. *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc content)

(* Load a design either from an ISPD'08 file or from the built-in suite. *)
let load ~file ~bench_name =
  match (file, bench_name) with
  | Some path, _ -> (
      match Ispd08.parse (read_file path) with
      | Error msg -> Error (`Msg (Printf.sprintf "cannot parse %s: %s" path msg))
      | Ok design -> Ok (Ispd08.to_graph design, design.Ispd08.nets))
  | None, Some name -> (
      match Cpla_expt.Suite.find name with
      | bench -> Ok (Synth.generate bench.Cpla_expt.Suite.spec)
      | exception Not_found ->
          Error (`Msg (Printf.sprintf "unknown benchmark %s (try `cpla list`)" name)))
  | None, None -> Error (`Msg "provide --file or --bench")

let prepare graph nets =
  let routed = Router.route_all ~graph nets in
  let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
  Init_assign.run asg;
  (asg, routed)

(* Commands evaluate to their process exit code ([Cmd.eval']) so `submit`
   can surface a job's terminal state; ordinary commands map success to 0. *)
let exit_ok term = Term.(const (fun () -> Cmd.Exit.ok) $ term)

(* ---- common options ---------------------------------------------------- *)

let file_arg =
  let doc = "ISPD'08 benchmark file ($(i,.gr) text format)." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let bench_arg =
  let doc = "Built-in synthetic benchmark name (see $(b,cpla list))." in
  Arg.(value & opt (some string) None & info [ "b"; "bench" ] ~docv:"NAME" ~doc)

let ratio_arg =
  let doc = "Fraction of nets released as critical (0.005 = the paper's 0.5%)." in
  Arg.(value & opt float 0.005 & info [ "r"; "ratio" ] ~docv:"RATIO" ~doc)

(* Rejecting 0/negative at the command line (instead of silently treating
   them as "sequential") keeps `--workers 0` from masking a typo'd fleet
   size in scripts. *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some v when v > 0 -> Ok v
    | Some v -> Error (`Msg (Printf.sprintf "%d is not a positive worker/job count" v))
    | None -> Error (`Msg (Printf.sprintf "invalid integer %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let positive_float =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0.0 -> Ok v
    | Some _ -> Error (`Msg "must be a positive number of seconds")
    | None -> Error (`Msg (Printf.sprintf "invalid number %S" s))
  in
  Arg.conv ~docv:"SECONDS" (parse, Format.pp_print_float)

(* ---- observability ------------------------------------------------------- *)

let trace_arg =
  let doc =
    "Record spans and write a Chrome trace-event JSON file to $(docv) (loadable at \
     ui.perfetto.dev or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)

let metrics_arg =
  let doc = "Print the observability metrics registry after the run." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Flip observability on around [f] when either export was requested, and
   export in a [finally] so a failed run still leaves its trace behind.
   Draining is safe here: both the driver's parallel map and the serve pool
   join their domains before returning (including on the exception path). *)
let with_obs ~trace ~metrics f =
  let on = trace <> None || metrics in
  if not on then f ()
  else begin
    Cpla_obs.Obs.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Cpla_obs.Obs.set_enabled false;
        (match trace with
        | None -> ()
        | Some path ->
            write_file path (Cpla_obs.Trace.json (Cpla_obs.Sink.drain ()));
            Printf.printf "trace written to %s\n" path);
        if metrics then print_endline (Cpla_obs.Metrics.dump ());
        Cpla_obs.Obs.reset ())
      f
  end

(* ---- synth -------------------------------------------------------------- *)

let synth_cmd =
  let out_arg =
    let doc = "Output path for the generated ISPD'08 file." in
    Arg.(value & opt string "design.gr" & info [ "o"; "out" ] ~docv:"PATH" ~doc)
  in
  let run bench_name out =
    match Cpla_expt.Suite.find bench_name with
    | exception Not_found ->
        Error (`Msg (Printf.sprintf "unknown benchmark %s" bench_name))
    | bench ->
        let spec = bench.Cpla_expt.Suite.spec in
        let graph, nets = Synth.generate spec in
        let nl = Cpla_grid.Graph.num_layers graph in
        let header =
          {
            Ispd08.grid_x = Cpla_grid.Graph.width graph;
            grid_y = Cpla_grid.Graph.height graph;
            num_layers = nl;
            vertical_capacity =
              Array.init nl (fun l ->
                  match Cpla_grid.Tech.layer_dir (Cpla_grid.Graph.tech graph) l with
                  | Cpla_grid.Tech.Vertical -> spec.Synth.capacity
                  | Cpla_grid.Tech.Horizontal -> 0);
            horizontal_capacity =
              Array.init nl (fun l ->
                  match Cpla_grid.Tech.layer_dir (Cpla_grid.Graph.tech graph) l with
                  | Cpla_grid.Tech.Horizontal -> spec.Synth.capacity
                  | Cpla_grid.Tech.Vertical -> 0);
            min_width = Array.make nl 1;
            min_spacing = Array.make nl 1;
            via_spacing = Array.make nl 1;
            lower_left_x = 0;
            lower_left_y = 0;
            tile_width = 10;
            tile_height = 10;
          }
        in
        write_file out (Ispd08.write { Ispd08.header; nets; adjustments = [] });
        Printf.printf "wrote %s (%d nets, %dx%dx%d)\n" out (Array.length nets)
          header.Ispd08.grid_x header.Ispd08.grid_y nl;
        Ok ()
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc:"benchmark name")
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Generate a synthetic benchmark as an ISPD'08 file")
    (exit_ok Term.(term_result (const run $ name_arg $ out_arg)))

(* ---- optimize ------------------------------------------------------------ *)

let optimize_cmd =
  let method_arg =
    let doc = "Optimisation engine: $(b,sdp), $(b,ilp), $(b,tila) or $(b,greedy)." in
    Arg.(
      value
      & opt
          (enum [ ("sdp", `Sdp); ("ilp", `Ilp); ("tila", `Tila); ("greedy", `Greedy) ])
          `Sdp
      & info [ "m"; "method" ] ~docv:"METHOD" ~doc)
  in
  let dump_arg =
    let doc = "Write the optimised routing in the contest output format." in
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"PATH" ~doc)
  in
  let steiner_arg =
    let doc = "Refine routing topologies with iterated-1-Steiner points." in
    Arg.(value & flag & info [ "steiner" ] ~doc)
  in
  let workers_arg =
    let doc = "Domains solving partitions concurrently (SDP/ILP methods)." in
    Arg.(value & opt positive_int 1 & info [ "w"; "workers" ] ~docv:"N" ~doc)
  in
  let run file bench_name ratio method_ dump steiner workers trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    Result.bind (load ~file ~bench_name) (fun (graph, nets) ->
        let routed = Router.route_all ~steiner ~graph nets in
        let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
        Init_assign.run asg;
        Printf.printf "routed %d nets (2-D overflow %d)\n" (Array.length nets)
          routed.Router.overflow_2d;
        let engine = Incremental.create asg in
        let released = Incremental.select engine ~ratio in
        let avg0, max0 = Incremental.avg_max_tcp engine released in
        Printf.printf "released %d nets: Avg(Tcp)=%.1f Max(Tcp)=%.1f\n"
          (Array.length released) avg0 max0;
        let cpu_s =
          match method_ with
          | `Tila ->
              let _, s =
                Cpla_util.Timer.time (fun () -> Cpla_tila.Tila.optimize asg ~released)
              in
              s
          | `Greedy ->
              let _, s =
                Cpla_util.Timer.time (fun () ->
                    Cpla_tila.Delay_greedy.optimize asg ~released)
              in
              s
          | (`Sdp | `Ilp) as m ->
              let config =
                {
                  Cpla.Config.default with
                  Cpla.Config.method_ =
                    (match m with `Sdp -> Cpla.Config.Sdp | `Ilp -> Cpla.Config.Ilp);
                  critical_ratio = ratio;
                  workers;
                }
              in
              let _, s =
                Cpla_util.Timer.time (fun () ->
                    Cpla.Driver.optimize_released ~config ~engine asg ~released)
              in
              s
        in
        let m = Cpla.Metrics.measure ~engine asg ~released ~cpu_s in
        Format.printf "%a@." Cpla.Metrics.pp m;
        (match dump with
        | None -> ()
        | Some path ->
            write_file path (Solution.write asg);
            Printf.printf "routing dumped to %s\n" path);
        Ok ())
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Timing-driven incremental layer assignment")
    (exit_ok Term.(
      term_result
        (const run $ file_arg $ bench_arg $ ratio_arg $ method_arg $ dump_arg $ steiner_arg
       $ workers_arg $ trace_arg $ metrics_arg)))

(* ---- serve ----------------------------------------------------------------- *)

let serve_cmd =
  let manifest_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MANIFEST"
          ~doc:
            "Job manifest: one job per line, $(i,<file-or-bench> [key=value ...]), with \
             $(b,#) comments.  Keys: method=sdp|ilp ratio=F priority=N deadline=S \
             iters=N workers=N name=LABEL.")
  in
  let workers_arg =
    let doc = "Worker domains draining the batch concurrently." in
    Arg.(
      value
      & opt positive_int (Cpla_util.Pool.recommended_workers ())
      & info [ "w"; "workers" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Default per-job wall-clock deadline in seconds (jobs may override)." in
    Arg.(value & opt (some positive_float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress per-job start notices (result lines still stream)." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let run manifest workers deadline quiet trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    match
      Cpla_serve.Job.parse_manifest ?default_deadline_s:deadline (read_file manifest)
    with
    | Error msg -> Error (`Msg msg)
    | Ok [] -> Error (`Msg (Printf.sprintf "manifest %s contains no jobs" manifest))
    | Ok specs ->
        Printf.printf "serve: %d job%s on %d worker%s\n%!" (List.length specs)
          (if List.length specs = 1 then "" else "s")
          workers
          (if workers = 1 then "" else "s");
        (* events arrive from worker domains, already serialised by the
           scheduler's internal lock — safe to print directly *)
        let on_event = function
          | Cpla_serve.Scheduler.Started spec ->
              if not quiet then
                Printf.printf "# start job %d %s\n%!" spec.Cpla_serve.Job.id
                  spec.Cpla_serve.Job.label
          | Cpla_serve.Scheduler.Finished (spec, terminal) ->
              Printf.printf "%s\n%!" (Cpla_serve.Report.line spec terminal)
        in
        let results = Cpla_serve.Scheduler.run ~workers ~on_event specs in
        print_endline (Cpla_serve.Report.summary results);
        if Cpla_serve.Report.all_ok results then Ok ()
        else Error (`Msg "some jobs did not finish ok")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Batch-optimise a manifest of designs over a pool of worker domains")
    (exit_ok Term.(
      term_result
        (const run $ manifest_arg $ workers_arg $ deadline_arg $ quiet_arg $ trace_arg
       $ metrics_arg)))

(* ---- daemon ---------------------------------------------------------------- *)

let daemon_cmd =
  let module Server = Cpla_net.Server in
  let host_arg =
    let doc = "Bind address (numeric IP or resolvable name)." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let port_arg =
    let doc = "TCP port ($(b,0) picks an ephemeral port, printed on startup)." in
    Arg.(value & opt int 7171 & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let workers_arg =
    let doc = "Worker domains executing jobs concurrently." in
    Arg.(
      value
      & opt positive_int (Cpla_util.Pool.recommended_workers ())
      & info [ "w"; "workers" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Default per-job wall-clock deadline in seconds (jobs may override)." in
    Arg.(value & opt (some positive_float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let queue_arg =
    let doc = "Pending-queue bound: submissions beyond it are shed ($(b,queue-full))." in
    Arg.(value & opt positive_int 64 & info [ "queue-bound" ] ~docv:"N" ~doc)
  in
  let cost_arg =
    let doc =
      "Queued expected-cost bound: submissions that would push the summed expected cost \
       of the pending queue above $(docv) are shed ($(b,cost-bound)).  Unbounded by \
       default."
    in
    Arg.(value & opt (some positive_float) None & info [ "cost-bound" ] ~docv:"COST" ~doc)
  in
  let quota_rate_arg =
    let doc = "Per-client token-bucket refill rate (requests per second)." in
    Arg.(value & opt positive_float 20.0 & info [ "quota-rate" ] ~docv:"RATE" ~doc)
  in
  let quota_burst_arg =
    let doc = "Per-client token-bucket capacity (burst size)." in
    Arg.(value & opt positive_float 40.0 & info [ "quota-burst" ] ~docv:"N" ~doc)
  in
  let grace_arg =
    let doc = "Seconds to let in-flight jobs settle on drain before cancelling them." in
    Arg.(value & opt positive_float 5.0 & info [ "drain-grace" ] ~docv:"SECONDS" ~doc)
  in
  let solve_cache_arg =
    let doc =
      "Share a content-addressed solve cache across all jobs: partition subproblems \
       whose canonical formulation was already solved skip the solver.  Hit/miss totals \
       appear in $(b,submit --stats) output."
    in
    Arg.(value & flag & info [ "solve-cache" ] ~doc)
  in
  let quiet_arg =
    let doc = "Suppress per-connection lifecycle notices." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let run host port workers deadline queue_bound cost_bound quota_rate quota_burst grace
      solve_cache quiet trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let log = if quiet then ignore else fun line -> Printf.printf "# %s\n%!" line in
    let config =
      {
        Server.default_config with
        Server.host;
        port;
        workers;
        queue_bound;
        cost_bound = Option.value ~default:infinity cost_bound;
        quota_rate;
        quota_burst;
        default_deadline_s = deadline;
        drain_grace_s = grace;
        solve_cache;
        log;
      }
    in
    match Server.create ~config () with
    | exception Unix.Unix_error (e, _, _) ->
        Error
          (`Msg (Printf.sprintf "cannot bind %s:%d: %s" host port (Unix.error_message e)))
    | server ->
        (* SIGTERM/SIGINT request a graceful drain: stop accepting, settle
           in-flight jobs, flush event streams, then serve returns and the
           obs finally exports the trace. *)
        let stop _ = Server.shutdown server in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        Printf.printf "cpla daemon listening on %s:%d\n%!" host (Server.port server);
        Server.serve server;
        Printf.printf "cpla daemon stopped\n%!";
        Ok ()
  in
  Cmd.v
    (Cmd.info "daemon" ~doc:"Serve optimisation jobs over TCP until SIGTERM")
    (exit_ok Term.(
      term_result
        (const run $ host_arg $ port_arg $ workers_arg $ deadline_arg $ queue_arg
       $ cost_arg $ quota_rate_arg $ quota_burst_arg $ grace_arg $ solve_cache_arg
       $ quiet_arg $ trace_arg $ metrics_arg)))

(* ---- submit ---------------------------------------------------------------- *)

(* Exit codes mirror the job's terminal state so scripts can branch on the
   outcome without parsing the stream:
     0 done, 1 failed, 2 timed-out, 3 cancelled, 4 shed. *)
let submit_cmd =
  let module Client = Cpla_net.Client in
  let module Protocol = Cpla_net.Protocol in
  let module Json = Cpla_net.Json in
  let connect_arg =
    let doc = "Daemon address as $(i,HOST:PORT)." in
    Arg.(value & opt string "127.0.0.1:7171" & info [ "c"; "connect" ] ~docv:"ADDR" ~doc)
  in
  let spec_arg =
    let doc =
      "Job spec: one manifest line, $(i,<file-or-bench> [key=value ...]) (same grammar \
       as $(b,cpla serve) manifests)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc)
  in
  let stats_arg =
    let doc = "Query daemon statistics instead of submitting." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let ping_arg =
    let doc = "Ping the daemon instead of submitting." in
    Arg.(value & flag & info [ "ping" ] ~doc)
  in
  let cancel_arg =
    let doc = "Cancel job $(docv) instead of submitting (exit 0 if the cancel won)." in
    Arg.(value & opt (some int) None & info [ "cancel" ] ~docv:"JOB" ~doc)
  in
  let cancel_after_arg =
    let doc = "Cancel the submitted job after $(docv) seconds (cancellation demo/tests)." in
    Arg.(
      value & opt (some positive_float) None & info [ "cancel-after" ] ~docv:"SECONDS" ~doc)
  in
  let trace_id_arg =
    let doc = "Trace id threaded through the daemon's spans and the job's events." in
    Arg.(value & opt (some string) None & info [ "trace-id" ] ~docv:"ID" ~doc)
  in
  let timeout_arg =
    let doc = "Give up when the server is silent for $(docv) seconds." in
    Arg.(value & opt (some positive_float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress the per-event stream (the outcome line still prints)." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let parse_connect s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg (Printf.sprintf "invalid address %S (want HOST:PORT)" s))
    | Some i -> (
        let host = String.sub s 0 i in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some port when port >= 0 && host <> "" -> Ok (host, port)
        | _ -> Error (`Msg (Printf.sprintf "invalid address %S (want HOST:PORT)" s)))
  in
  let code_of_state = function
    | "done" -> 0
    | "failed" -> 1
    | "timed-out" -> 2
    | "cancelled" -> 3
    | _ -> 1
  in
  (* Stream the job's events until a terminal one, firing the scheduled
     cancel (if any) from the same loop. *)
  let stream client ~job ~cancel_after ~timeout_s ~quiet =
    let watch = Cpla_util.Timer.wall () in
    let cancel_sent = ref false in
    let terminal = ref None in
    let handle_ev (ev : Protocol.event) =
      if ev.Protocol.job = job then begin
        if not quiet then print_endline (Json.to_string (Protocol.event_to_json ev));
        if Protocol.is_terminal_state ev.Protocol.state then
          terminal := Some ev.Protocol.state
      end
    in
    let cancel_due () =
      match cancel_after with
      | Some s -> (not !cancel_sent) && Cpla_util.Timer.elapsed_s watch >= s
      | None -> false
    in
    let rec go () =
      match !terminal with
      | Some state ->
          Printf.printf "job %d %s\n%!" job state;
          Ok (code_of_state state)
      | None ->
          if cancel_due () then begin
            cancel_sent := true;
            match Client.call ?timeout_s client ~on_event:handle_ev (Protocol.Cancel { job }) with
            | Ok _ -> go ()
            | Error e -> Error (`Msg e)
          end
          else begin
            let recv_timeout =
              match cancel_after with
              | Some s when not !cancel_sent ->
                  Some (Float.max 0.01 (s -. Cpla_util.Timer.elapsed_s watch))
              | _ -> timeout_s
            in
            match Client.recv ?timeout_s:recv_timeout client with
            | Ok (Protocol.Ev ev) ->
                handle_ev ev;
                go ()
            | Ok (Protocol.Resp _) -> go ()
            | Error _ when cancel_due () -> go ()
            | Error e -> Error (`Msg e)
          end
    in
    go ()
  in
  let run connect spec stats ping cancel cancel_after trace_id timeout_s quiet =
    Result.bind (parse_connect connect) @@ fun (host, port) ->
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    match Client.connect ~host ~port () with
    | exception Unix.Unix_error (e, _, _) ->
        Error
          (`Msg (Printf.sprintf "cannot connect to %s:%d: %s" host port
                   (Unix.error_message e)))
    | client -> (
        Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
        match (spec, stats, ping, cancel) with
        | _, true, _, _ -> (
            match Client.call ?timeout_s client ?trace:trace_id Protocol.Stats with
            | Ok (Protocol.Result { resp = Protocol.Stats_r s; _ }) ->
                Printf.printf
                  "pending=%d running=%d settled=%d shed=%d draining=%b cache_hits=%d \
                   cache_misses=%d\n"
                  s.Protocol.pending s.Protocol.running s.Protocol.settled s.Protocol.shed
                  s.Protocol.draining s.Protocol.cache_hits s.Protocol.cache_misses;
                Ok 0
            | Ok _ -> Error (`Msg "unexpected response to stats")
            | Error e -> Error (`Msg e))
        | _, _, true, _ -> (
            match Client.call ?timeout_s client ?trace:trace_id Protocol.Ping with
            | Ok (Protocol.Result { resp = Protocol.Pong; _ }) ->
                print_endline "pong";
                Ok 0
            | Ok _ -> Error (`Msg "unexpected response to ping")
            | Error e -> Error (`Msg e))
        | _, _, _, Some job -> (
            match Client.call ?timeout_s client ?trace:trace_id (Protocol.Cancel { job }) with
            | Ok (Protocol.Result { resp = Protocol.Cancel_r { won; _ }; _ }) ->
                Printf.printf "cancel job %d: %s\n" job (if won then "won" else "lost");
                Ok (if won then 0 else 1)
            | Ok _ -> Error (`Msg "unexpected response to cancel")
            | Error e -> Error (`Msg e))
        | Some spec_line, _, _, _ -> (
            match
              Client.call ?timeout_s client ?trace:trace_id
                (Protocol.Submit { spec_line })
            with
            | Error e -> Error (`Msg e)
            | Ok (Protocol.Error { code = Protocol.Shed reason; message; _ }) ->
                Printf.eprintf "shed (%s): %s\n%!" (Protocol.shed_reason_string reason)
                  message;
                Ok 4
            | Ok (Protocol.Error { message; _ }) -> Error (`Msg message)
            | Ok (Protocol.Result { resp = Protocol.Accepted { job }; _ }) ->
                Printf.printf "job %d accepted\n%!" job;
                stream client ~job ~cancel_after ~timeout_s ~quiet
            | Ok (Protocol.Result _) -> Error (`Msg "unexpected response to submit"))
        | None, false, false, None ->
            Error (`Msg "provide a job spec, --stats, --ping or --cancel"))
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a job to a running cpla daemon and stream its status events")
    Term.(
      term_result
        (const run $ connect_arg $ spec_arg $ stats_arg $ ping_arg $ cancel_arg
       $ cancel_after_arg $ trace_id_arg $ timeout_arg $ quiet_arg))

(* ---- density -------------------------------------------------------------- *)

let density_cmd =
  let run file bench_name =
    Result.bind (load ~file ~bench_name) (fun (graph, nets) ->
        let _asg, _ = prepare graph nets in
        print_string (Cpla_grid.Graph.density_map graph);
        Ok ())
  in
  Cmd.v
    (Cmd.info "density" ~doc:"Print the routing congestion map of a design")
    (exit_ok Term.(term_result (const run $ file_arg $ bench_arg)))

(* ---- bench ---------------------------------------------------------------- *)

let bench_cmd =
  let section_arg =
    Arg.(
      required
      & pos 0
          (some (enum
                   [
                     ("fig1", `Fig1);
                     ("fig3b", `Fig3b);
                     ("fig7", `Fig7);
                     ("fig8", `Fig8);
                     ("fig9", `Fig9);
                     ("table2", `Table2);
                   ]))
          None
      & info [] ~docv:"SECTION" ~doc:"experiment to regenerate")
  in
  let run section =
    (match section with
    | `Fig1 -> Cpla_expt.Experiments.fig1 ()
    | `Fig3b -> Cpla_expt.Experiments.fig3b ()
    | `Fig7 -> Cpla_expt.Experiments.fig7 ()
    | `Fig8 -> Cpla_expt.Experiments.fig8 ()
    | `Fig9 -> Cpla_expt.Experiments.fig9 ()
    | `Table2 -> Cpla_expt.Experiments.table2 ());
    Ok ()
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Regenerate a paper experiment")
    (exit_ok Term.(term_result (const run $ section_arg)))

(* ---- verify ---------------------------------------------------------------- *)

let verify_cmd =
  let run file bench_name =
    Result.bind (load ~file ~bench_name) (fun (graph, nets) ->
        let asg, _ = prepare graph nets in
        let engine = Incremental.create asg in
        let released = Incremental.select engine ~ratio:0.005 in
        ignore (Cpla.Driver.optimize_released ~engine asg ~released);
        let r = Verify.check asg in
        print_endline (Verify.summary r);
        List.iteri
          (fun i v -> if i < 20 then Format.printf "  %a@." Verify.pp_violation v)
          r.Verify.violations;
        if List.length r.Verify.violations > 20 then
          Printf.printf "  ... and %d more\n" (List.length r.Verify.violations - 20);
        Ok ())
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Route, optimise and audit a design (evaluator role)")
    (exit_ok Term.(term_result (const run $ file_arg $ bench_arg)))

(* ---- slack ---------------------------------------------------------------- *)

let slack_cmd =
  let factor_arg =
    let doc = "Budget factor over each net's zero-load lower-bound delay." in
    Arg.(value & opt float 3.5 & info [ "budget-factor" ] ~docv:"F" ~doc)
  in
  let run file bench_name factor =
    Result.bind (load ~file ~bench_name) (fun (graph, nets) ->
        let asg, _ = prepare graph nets in
        let budget = Slack.Scaled factor in
        let r = Slack.analyze asg budget in
        Printf.printf "before: violations=%d WNS=%.1f TNS=%.1f\n" r.Slack.violations
          r.Slack.wns r.Slack.tns;
        let released = Slack.select_violating asg budget ~max_nets:100 in
        if Array.length released > 0 then begin
          ignore (Cpla.Driver.optimize_released asg ~released);
          let r = Slack.analyze asg budget in
          Printf.printf "after:  violations=%d WNS=%.1f TNS=%.1f\n" r.Slack.violations
            r.Slack.wns r.Slack.tns
        end;
        Ok ())
  in
  Cmd.v
    (Cmd.info "slack" ~doc:"Slack analysis and slack-driven optimisation")
    (exit_ok Term.(term_result (const run $ file_arg $ bench_arg $ factor_arg)))

(* ---- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun b ->
        let s = b.Cpla_expt.Suite.spec in
        Printf.printf "%-10s %3dx%-3d %d layers %6d nets%s\n" b.Cpla_expt.Suite.name
          s.Synth.width s.Synth.height s.Synth.num_layers s.Synth.num_nets
          (if b.Cpla_expt.Suite.small then "  (small-case set)" else ""))
      Cpla_expt.Suite.all;
    Ok ()
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in benchmark suite")
    (exit_ok Term.(term_result (const run $ const ())))

let () =
  let doc = "incremental layer assignment for critical path timing (DAC'16)" in
  let info = Cmd.info "cpla" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            synth_cmd; optimize_cmd; serve_cmd; daemon_cmd; submit_cmd; density_cmd;
            slack_cmd; verify_cmd; bench_cmd; list_cmd;
          ]))
